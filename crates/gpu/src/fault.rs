//! Seeded fault injection for the simulated fabric.
//!
//! A [`FaultPlan`] is generated up front from a `u64` seed and a
//! [`FaultSpec`], then installed on a [`crate::Machine`]. It perturbs the
//! simulation in four ways, mirroring the failure modes a real NVLink/IB
//! fabric exhibits under load:
//!
//! * **bandwidth-degradation windows** — per directed link, intervals during
//!   which the link runs at a fraction of its nominal bandwidth (thermal
//!   throttling, congestion from co-tenants);
//! * **link flaps** — intervals during which a directed link is down
//!   entirely; sends attempted inside one fail with
//!   [`FabricError::LinkDown`] and report when the link comes back;
//! * **per-message transient faults** — each message independently may be
//!   dropped (wire time is consumed, then [`FabricError::MessageDropped`] is
//!   returned, as a CRC-failed packet would) or delayed by a sampled jitter;
//! * **stragglers** — per-GPU slowdown factors applied to kernel block
//!   times (clock throttling, ECC scrubbing, noisy neighbours).
//!
//! Everything is derived deterministically from the seed: window placement
//! uses one PRNG stream per directed link, per-message sampling uses one
//! stream per directed link advanced once per message, and straggler factors
//! use a per-GPU stream. Two runs with the same seed and the same call
//! sequence therefore inject bit-identical faults; the running
//! [`FaultPlan::fingerprint`] hash makes that property cheap to assert.
//!
//! A plan whose spec is all zeros ([`FaultSpec::none`]) is *trivial*: the
//! machine bypasses every fault code path and timing is bit-identical to a
//! run with no plan installed.

use desim::{Dur, SimTime};
use std::fmt;

use crate::Topology;

/// Errors surfaced by the fabric and the layers above it. This is the shared
/// taxonomy: `pgas-rt` and `simccl` re-export it so retries, deadlines and
/// failover all speak the same language.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FabricError {
    /// The directed link was down when the send was attempted. `up_at` is
    /// when the current down window ends (callers back off until then).
    LinkDown {
        /// Source GPU of the attempted send.
        src: usize,
        /// Destination GPU of the attempted send.
        dst: usize,
        /// When the send was attempted.
        at: SimTime,
        /// When the link comes back up.
        up_at: SimTime,
    },
    /// A message was transmitted but lost in flight (transient; retryable).
    /// `at` is when the loss was detected — wire time was already consumed.
    MessageDropped {
        /// Source GPU.
        src: usize,
        /// Destination GPU.
        dst: usize,
        /// Detection time (end of the wasted wire interval).
        at: SimTime,
    },
    /// An operation did not complete by its deadline. `completes_at` is when
    /// it would have completed, so callers can report the margin.
    Timeout {
        /// The deadline that was missed.
        deadline: SimTime,
        /// When the operation actually completes.
        completes_at: SimTime,
    },
    /// A retry loop gave up. Wraps the error from the final attempt.
    RetryExhausted {
        /// How many attempts were made.
        attempts: u32,
        /// The error the last attempt failed with.
        last: Box<FabricError>,
    },
    /// The whole device (and the embedding shard it owns) is unavailable:
    /// ECC double-bit error, Xid reset, host kernel panic. Unlike a link
    /// flap this is not cleared by retrying a message — the shard's rows
    /// are gone until `up_at`, and resilient callers serve them from
    /// hot-cache replicas or the degradation fill in the meantime.
    DeviceLost {
        /// The lost GPU.
        dev: usize,
        /// When the loss was observed.
        at: SimTime,
        /// When the device (and its shard) comes back.
        up_at: SimTime,
    },
}

impl fmt::Display for FabricError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FabricError::LinkDown {
                src,
                dst,
                at,
                up_at,
            } => {
                write!(f, "link {src}->{dst} down at {at:?} (up at {up_at:?})")
            }
            FabricError::MessageDropped { src, dst, at } => {
                write!(f, "message {src}->{dst} dropped at {at:?}")
            }
            FabricError::Timeout {
                deadline,
                completes_at,
            } => {
                write!(
                    f,
                    "deadline {deadline:?} missed (completes at {completes_at:?})"
                )
            }
            FabricError::RetryExhausted { attempts, last } => {
                write!(f, "retries exhausted after {attempts} attempts: {last}")
            }
            FabricError::DeviceLost { dev, at, up_at } => {
                write!(f, "device {dev} lost at {at:?} (recovers at {up_at:?})")
            }
        }
    }
}

impl std::error::Error for FabricError {}

impl FabricError {
    /// The simulation time at which the failure became observable — the
    /// earliest instant a retry could be scheduled.
    pub fn observed_at(&self) -> SimTime {
        match self {
            FabricError::LinkDown { at, .. } => *at,
            FabricError::MessageDropped { at, .. } => *at,
            FabricError::Timeout { deadline, .. } => *deadline,
            FabricError::RetryExhausted { last, .. } => last.observed_at(),
            FabricError::DeviceLost { at, .. } => *at,
        }
    }

    /// True for faults a bounded retry can reasonably clear (transient drops
    /// and down windows with a known end); false for deadline misses and
    /// device loss (a dead shard is a failover problem, not a retry one).
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            FabricError::LinkDown { .. } | FabricError::MessageDropped { .. }
        )
    }
}

/// Capped exponential backoff for retrying transient fabric faults. All
/// delays are simulated time, so retry schedules are fully deterministic.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Total attempts before giving up (first try included).
    pub max_attempts: u32,
    /// Backoff before the first retry.
    pub base_backoff: Dur,
    /// Backoff ceiling (the exponential doubling stops here).
    pub max_backoff: Dur,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 5,
            base_backoff: Dur::from_us(5),
            max_backoff: Dur::from_us(80),
        }
    }
}

impl RetryPolicy {
    /// Backoff before retry number `retry` (1-based): `base * 2^(retry-1)`,
    /// capped at `max_backoff`.
    pub fn backoff(&self, retry: u32) -> Dur {
        let mut b = self.base_backoff;
        for _ in 1..retry {
            if b >= self.max_backoff {
                break;
            }
            b = (b * 2).min(self.max_backoff);
        }
        b.min(self.max_backoff)
    }

    /// Earliest instant a retry may be attempted after failing with `err`:
    /// past a down window's end when known, plus the capped backoff.
    pub fn next_attempt_at(&self, err: &FabricError, retry: u32) -> SimTime {
        let floor = match err {
            FabricError::LinkDown { up_at, .. } => *up_at,
            other => other.observed_at(),
        };
        floor + self.backoff(retry)
    }
}

/// Generation parameters for a [`FaultPlan`]. Rates are per link (or per
/// GPU) per *second of simulated time*; windows are placed over
/// `[0, horizon)`.
#[derive(Clone, Copy, Debug)]
pub struct FaultSpec {
    /// Expected bandwidth-degradation windows per directed link per second.
    pub degrade_rate: f64,
    /// Degradation window length bounds.
    pub degrade_window: (Dur, Dur),
    /// Bandwidth multiplier sampled per degradation window, in `(0, 1]`.
    pub degrade_factor: (f64, f64),
    /// Expected down windows (flaps) per directed link per second.
    pub flap_rate: f64,
    /// Down-window length bounds.
    pub flap_window: (Dur, Dur),
    /// Probability each message is dropped in flight.
    pub drop_prob: f64,
    /// Probability each message is delayed by sampled jitter.
    pub delay_prob: f64,
    /// Jitter bounds for delayed messages.
    pub delay: (Dur, Dur),
    /// Probability each GPU is a straggler.
    pub straggler_prob: f64,
    /// Slowdown factor bounds for straggler GPUs (`>= 1`).
    pub straggler_factor: (f64, f64),
    /// Expected whole-device outages per GPU per second. During an outage
    /// window the device (and the embedding shard it owns) is unavailable;
    /// queries see it via [`FaultPlan::device_down_until`] and fallible
    /// callers get [`FabricError::DeviceLost`]. Sampled from its own
    /// substream namespace, so enabling device loss never perturbs the
    /// link-window, message or straggler sequences of an otherwise equal
    /// spec.
    pub device_loss_rate: f64,
    /// Outage window length bounds.
    pub device_loss_window: (Dur, Dur),
    /// Span over which windows are placed. Queries past the horizon see a
    /// healthy fabric.
    pub horizon: Dur,
}

impl FaultSpec {
    /// The all-zero spec: a plan generated from it is trivial and the
    /// machine bypasses fault handling entirely.
    pub fn none() -> Self {
        FaultSpec {
            degrade_rate: 0.0,
            degrade_window: (Dur::ZERO, Dur::ZERO),
            degrade_factor: (1.0, 1.0),
            flap_rate: 0.0,
            flap_window: (Dur::ZERO, Dur::ZERO),
            drop_prob: 0.0,
            delay_prob: 0.0,
            delay: (Dur::ZERO, Dur::ZERO),
            straggler_prob: 0.0,
            straggler_factor: (1.0, 1.0),
            device_loss_rate: 0.0,
            device_loss_window: (Dur::ZERO, Dur::ZERO),
            horizon: Dur::ZERO,
        }
    }

    /// The canonical chaos profile used by `reproduce chaos`, scaled by an
    /// `intensity` knob in `[0, 1]`. Intensity 0 returns [`FaultSpec::none`]
    /// exactly (strict no-op); intensity 1 is a severely misbehaving fabric.
    pub fn chaos(intensity: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&intensity),
            "chaos intensity {intensity} out of [0, 1]"
        );
        if intensity == 0.0 {
            return FaultSpec::none();
        }
        FaultSpec {
            degrade_rate: 400.0 * intensity,
            degrade_window: (Dur::from_us(20), Dur::from_us(200)),
            degrade_factor: (0.25, 0.9),
            flap_rate: 150.0 * intensity,
            flap_window: (Dur::from_us(30), Dur::from_us(300)),
            drop_prob: 0.02 * intensity,
            delay_prob: 0.05 * intensity,
            delay: (Dur::from_us(2), Dur::from_us(20)),
            straggler_prob: 0.25 * intensity,
            straggler_factor: (1.05, 1.0 + 0.5 * intensity),
            device_loss_rate: 0.0,
            device_loss_window: (Dur::ZERO, Dur::ZERO),
            horizon: Dur::from_ms(200),
        }
    }

    /// The fault-storm profile the adaptive-control scenario suite uses:
    /// the [`FaultSpec::chaos`] link/message/straggler mix plus whole-device
    /// outages. Because device-loss windows come from their own substream
    /// namespace, `storm(i)` injects the *same* link faults as `chaos(i)` —
    /// the storm is strictly chaos plus shard loss.
    pub fn storm(intensity: f64) -> Self {
        let mut s = FaultSpec::chaos(intensity);
        if intensity > 0.0 {
            s.device_loss_rate = 30.0 * intensity;
            s.device_loss_window = (Dur::from_ms(2), Dur::from_ms(12));
        }
        s
    }

    /// True if this spec injects nothing at all.
    pub fn is_none(&self) -> bool {
        self.degrade_rate == 0.0
            && self.flap_rate == 0.0
            && self.drop_prob == 0.0
            && self.delay_prob == 0.0
            && self.straggler_prob == 0.0
            && self.device_loss_rate == 0.0
    }
}

/// What a fault window does to its link.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultKind {
    /// Link runs at `factor` × nominal bandwidth.
    Degraded(f64),
    /// Link is down; sends fail.
    Down,
}

/// One scheduled fault window on a directed link.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultWindow {
    /// Window start (inclusive).
    pub start: SimTime,
    /// Window end (exclusive).
    pub end: SimTime,
    /// What the window does.
    pub kind: FaultKind,
}

/// Instantaneous state of a directed link under a plan.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum LinkState {
    /// Link is up, running at `bw_factor` × nominal bandwidth (1.0 = clean).
    Up {
        /// Effective bandwidth multiplier in `(0, 1]`.
        bw_factor: f64,
    },
    /// Link is down until `up_at`.
    Down {
        /// When the current down window ends.
        up_at: SimTime,
    },
}

/// Per-message sampled fault.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum MessageFault {
    /// Deliver normally.
    None,
    /// Message is lost in flight.
    Drop,
    /// Message is delayed by the given jitter.
    Delay(Dur),
}

/// One injected fault event, recorded for traces and determinism checks.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultEvent {
    /// A message on `src -> dst` was dropped.
    Dropped {
        /// Source GPU.
        src: usize,
        /// Destination GPU.
        dst: usize,
        /// Per-pair message sequence number at the time of the drop.
        seq: u64,
    },
    /// A message on `src -> dst` was delayed by `jitter`.
    Delayed {
        /// Source GPU.
        src: usize,
        /// Destination GPU.
        dst: usize,
        /// Per-pair message sequence number at the time of the delay.
        seq: u64,
        /// Sampled jitter.
        jitter: Dur,
    },
}

/// SplitMix64: tiny, fast, and good enough for fault sampling. Kept local so
/// `gpusim` stays dependency-free.
#[derive(Clone, Copy, Debug)]
struct Stream(u64);

impl Stream {
    fn new(seed: u64) -> Self {
        Stream(seed)
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    fn uniform_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    fn uniform_dur(&mut self, lo: Dur, hi: Dur) -> Dur {
        let span = hi.as_ns().saturating_sub(lo.as_ns());
        if span == 0 {
            return lo;
        }
        Dur::from_ns(lo.as_ns() + self.next_u64() % (span + 1))
    }
}

/// Mix a seed with a stream label so each link/GPU gets its own independent
/// PRNG stream.
fn substream(seed: u64, label: u64) -> Stream {
    let mut s = Stream::new(seed ^ label.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    // Burn one draw so adjacent labels decorrelate immediately.
    s.next_u64();
    s
}

/// A fully materialized fault schedule for one machine.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    n: usize,
    seed: u64,
    spec: FaultSpec,
    trivial: bool,
    /// Per ordered pair (`src * n + dst`), sorted by start.
    windows: Vec<Vec<FaultWindow>>,
    /// Per-GPU whole-device outage windows (always [`FaultKind::Down`]),
    /// sorted by start.
    dev_windows: Vec<Vec<FaultWindow>>,
    /// Per-GPU kernel slowdown factor, `>= 1.0`.
    straggler: Vec<f64>,
    /// Per ordered pair message-sampling stream.
    msg_streams: Vec<Stream>,
    /// Per ordered pair message counter (sequence numbers in events).
    msg_seq: Vec<u64>,
    /// Injected per-message events, in injection order.
    events: Vec<FaultEvent>,
    /// Running hash over every sampled decision.
    digest: u64,
}

impl FaultPlan {
    /// Materialize a plan for an `n_gpus` machine. Window placement,
    /// straggler factors and all per-message sampling derive only from
    /// `seed` and `spec`.
    pub fn generate(seed: u64, n_gpus: usize, spec: FaultSpec) -> Self {
        Self::generate_with(seed, n_gpus, spec, |_, _| &spec)
    }

    /// Materialize a plan for a two-tier pod topology: link windows
    /// (degradation + flaps) on intra-node pairs come from `intra`, on
    /// inter-node pairs from `inter` — so the slow scale-out tier can
    /// degrade and flap independently of the in-node crossbar. Device-level
    /// faults (message drops/delays, stragglers, whole-device loss) come
    /// from `intra`, the node-local spec. Window placement stays per-pair
    /// substream-seeded, so with `intra == inter` the plan is bit-identical
    /// to [`FaultPlan::generate`] on the same GPU count.
    pub fn generate_tiered(
        seed: u64,
        topology: &Topology,
        intra: FaultSpec,
        inter: FaultSpec,
    ) -> Self {
        Self::generate_with(seed, topology.n_gpus(), intra, |src, dst| {
            if topology.same_node(src, dst) {
                &intra
            } else {
                &inter
            }
        })
    }

    /// Shared generation core: `spec_for(src, dst)` picks the window spec of
    /// each directed pair; `base` drives everything non-pair-specific. The
    /// plan is trivial only when `base` *and* every pair spec inject nothing.
    fn generate_with<'s>(
        seed: u64,
        n_gpus: usize,
        base: FaultSpec,
        spec_for: impl Fn(usize, usize) -> &'s FaultSpec,
    ) -> Self {
        assert!(n_gpus >= 1, "fault plan needs at least one GPU");
        assert!(
            base.drop_prob >= 0.0 && base.drop_prob <= 1.0,
            "drop_prob out of [0, 1]"
        );
        assert!(
            base.delay_prob >= 0.0 && base.delay_prob + base.drop_prob <= 1.0,
            "drop_prob + delay_prob must stay within [0, 1]"
        );
        let n = n_gpus;
        let spec = base;
        let mut trivial = base.is_none();
        let mut windows = vec![Vec::new(); n * n];
        let mut msg_streams = Vec::with_capacity(n * n);
        for src in 0..n {
            for dst in 0..n {
                let pair = (src * n + dst) as u64;
                msg_streams.push(substream(seed, 0x4D53_0000 | pair));
                if src == dst {
                    continue;
                }
                let pair_spec = spec_for(src, dst);
                trivial &= pair_spec.is_none();
                if pair_spec.is_none() {
                    continue;
                }
                let mut s = substream(seed, 0x574E_0000 | pair);
                let mut w = Vec::new();
                let horizon_s = pair_spec.horizon.as_secs_f64();
                for _ in 0..sample_count(&mut s, pair_spec.degrade_rate * horizon_s) {
                    let start = s.uniform_dur(Dur::ZERO, pair_spec.horizon);
                    let len = s.uniform_dur(pair_spec.degrade_window.0, pair_spec.degrade_window.1);
                    let factor =
                        s.uniform_f64(pair_spec.degrade_factor.0, pair_spec.degrade_factor.1);
                    w.push(FaultWindow {
                        start: SimTime::ZERO + start,
                        end: SimTime::ZERO + start + len,
                        kind: FaultKind::Degraded(factor),
                    });
                }
                for _ in 0..sample_count(&mut s, pair_spec.flap_rate * horizon_s) {
                    let start = s.uniform_dur(Dur::ZERO, pair_spec.horizon);
                    let len = s.uniform_dur(pair_spec.flap_window.0, pair_spec.flap_window.1);
                    w.push(FaultWindow {
                        start: SimTime::ZERO + start,
                        end: SimTime::ZERO + start + len,
                        kind: FaultKind::Down,
                    });
                }
                w.sort_by_key(|win| (win.start, win.end));
                windows[src * n + dst] = w;
            }
        }
        let mut straggler = Vec::with_capacity(n);
        for dev in 0..n {
            let mut s = substream(seed, 0x5347_0000 | dev as u64);
            let factor = if !trivial && s.next_f64() < spec.straggler_prob {
                s.uniform_f64(spec.straggler_factor.0, spec.straggler_factor.1)
            } else {
                1.0
            };
            straggler.push(factor);
        }
        // Whole-device outages draw from their own substream namespace
        // (`0x4445` = "DE"), so a spec that merely *adds* device loss keeps
        // every link window, message fate and straggler factor of the
        // device-loss-free spec bit-identical.
        let mut dev_windows = vec![Vec::new(); n];
        if !trivial && spec.device_loss_rate > 0.0 {
            let horizon_s = spec.horizon.as_secs_f64();
            for (dev, wins) in dev_windows.iter_mut().enumerate() {
                let mut s = substream(seed, 0x4445_0000 | dev as u64);
                for _ in 0..sample_count(&mut s, spec.device_loss_rate * horizon_s) {
                    let start = s.uniform_dur(Dur::ZERO, spec.horizon);
                    let len = s.uniform_dur(spec.device_loss_window.0, spec.device_loss_window.1);
                    wins.push(FaultWindow {
                        start: SimTime::ZERO + start,
                        end: SimTime::ZERO + start + len,
                        kind: FaultKind::Down,
                    });
                }
                wins.sort_by_key(|win| (win.start, win.end));
            }
        }
        FaultPlan {
            n,
            seed,
            spec,
            trivial,
            windows,
            dev_windows,
            straggler,
            msg_streams,
            msg_seq: vec![0; n * n],
            events: Vec::new(),
            digest: seed ^ 0xC0FF_EE00_D15E_A5ED,
        }
    }

    /// The seed the plan was generated from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The generation spec.
    pub fn spec(&self) -> &FaultSpec {
        &self.spec
    }

    /// True if the plan injects nothing; the machine bypasses fault paths.
    pub fn is_trivial(&self) -> bool {
        self.trivial
    }

    /// Number of GPUs the plan was generated for.
    pub fn n_gpus(&self) -> usize {
        self.n
    }

    /// Kernel slowdown factor for `dev` (1.0 = healthy).
    pub fn straggler_factor(&self, dev: usize) -> f64 {
        self.straggler[dev]
    }

    /// Scheduled fault windows on the directed link, sorted by start.
    pub fn windows(&self, src: usize, dst: usize) -> &[FaultWindow] {
        &self.windows[src * self.n + dst]
    }

    /// State of the directed link at `at`. Down windows take precedence;
    /// overlapping degradation windows compound multiplicatively.
    pub fn link_state(&self, src: usize, dst: usize, at: SimTime) -> LinkState {
        let mut factor = 1.0;
        for w in &self.windows[src * self.n + dst] {
            if at < w.start {
                break; // sorted by start: nothing later can contain `at`
            }
            if at >= w.end {
                continue;
            }
            match w.kind {
                FaultKind::Down => return LinkState::Down { up_at: w.end },
                FaultKind::Degraded(f) => factor *= f,
            }
        }
        LinkState::Up { bw_factor: factor }
    }

    /// Scheduled whole-device outage windows for `dev`, sorted by start.
    pub fn device_windows(&self, dev: usize) -> &[FaultWindow] {
        &self.dev_windows[dev]
    }

    /// If `dev` is inside an outage window at `at`, the instant it comes
    /// back up (the latest end across overlapping windows); `None` while
    /// the device is healthy.
    pub fn device_down_until(&self, dev: usize, at: SimTime) -> Option<SimTime> {
        let mut up_at: Option<SimTime> = None;
        for w in &self.dev_windows[dev] {
            if at < w.start {
                break; // sorted by start: nothing later can contain `at`
            }
            if at < w.end {
                up_at = Some(up_at.map_or(w.end, |u| u.max(w.end)));
            }
        }
        up_at
    }

    /// The typed error a fallible caller observes when touching `dev` at
    /// `at`, if the device is inside an outage window.
    pub fn device_error(&self, dev: usize, at: SimTime) -> Option<FabricError> {
        self.device_down_until(dev, at)
            .map(|up_at| FabricError::DeviceLost { dev, at, up_at })
    }

    /// Number of device outages for `dev` that start at or before `upto`.
    pub fn device_loss_count(&self, dev: usize, upto: SimTime) -> usize {
        self.dev_windows[dev]
            .iter()
            .filter(|w| w.start <= upto)
            .count()
    }

    /// Number of down windows (flaps) on the directed link that start at or
    /// before `upto`. The resilience policy uses this to decide failover.
    pub fn flap_count(&self, src: usize, dst: usize, upto: SimTime) -> usize {
        self.windows[src * self.n + dst]
            .iter()
            .filter(|w| w.kind == FaultKind::Down && w.start <= upto)
            .count()
    }

    /// Fraction of `[start, end)` during which the directed link is inside
    /// any fault window (degraded or down). Used to tag the fig7/fig10
    /// traffic CSV with a fault column.
    pub fn fault_fraction(&self, src: usize, dst: usize, start: SimTime, end: SimTime) -> f64 {
        if end <= start {
            return 0.0;
        }
        let mut covered = 0u64;
        let mut cursor = start;
        // Windows may overlap; walk them in start order and count union time.
        for w in &self.windows[src * self.n + dst] {
            if w.end <= cursor || w.start >= end {
                continue;
            }
            let s = w.start.max(cursor);
            let e = w.end.min(end);
            if e > s {
                covered += (e - s).as_ns();
                cursor = e;
            }
            if cursor >= end {
                break;
            }
        }
        covered as f64 / (end - start).as_ns() as f64
    }

    /// Sample the fate of the next message on the directed link. Advances the
    /// pair's private stream, so interleaving across pairs cannot perturb
    /// another pair's decisions.
    pub fn sample_message(&mut self, src: usize, dst: usize) -> MessageFault {
        let pair = src * self.n + dst;
        let seq = self.msg_seq[pair];
        self.msg_seq[pair] += 1;
        if self.trivial || (self.spec.drop_prob == 0.0 && self.spec.delay_prob == 0.0) {
            return MessageFault::None;
        }
        let s = &mut self.msg_streams[pair];
        let u = s.next_f64();
        if u < self.spec.drop_prob {
            self.events.push(FaultEvent::Dropped { src, dst, seq });
            self.mix(1, pair as u64, seq);
            MessageFault::Drop
        } else if u < self.spec.drop_prob + self.spec.delay_prob {
            let jitter = s.uniform_dur(self.spec.delay.0, self.spec.delay.1);
            self.events.push(FaultEvent::Delayed {
                src,
                dst,
                seq,
                jitter,
            });
            self.mix(2, pair as u64 ^ jitter.as_ns(), seq);
            MessageFault::Delay(jitter)
        } else {
            MessageFault::None
        }
    }

    /// Every injected per-message event so far, in injection order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Running hash over the plan's schedule and every injected event. Two
    /// runs with the same seed, spec and call sequence produce the same
    /// fingerprint — the determinism property tests assert exactly this.
    pub fn fingerprint(&self) -> u64 {
        let mut h = self.digest;
        for (i, ws) in self.windows.iter().enumerate() {
            for w in ws {
                h = mix64(h ^ (i as u64) ^ w.start.as_ns().rotate_left(17) ^ w.end.as_ns());
                if let FaultKind::Degraded(f) = w.kind {
                    h = mix64(h ^ f.to_bits());
                }
            }
        }
        for (dev, f) in self.straggler.iter().enumerate() {
            h = mix64(h ^ (dev as u64) ^ f.to_bits());
        }
        for (dev, ws) in self.dev_windows.iter().enumerate() {
            for w in ws {
                h = mix64(
                    h ^ (dev as u64).rotate_left(8)
                        ^ w.start.as_ns().rotate_left(17)
                        ^ w.end.as_ns(),
                );
            }
        }
        h
    }

    fn mix(&mut self, tag: u64, a: u64, b: u64) {
        self.digest = mix64(self.digest ^ tag.rotate_left(48) ^ a.rotate_left(24) ^ b);
    }
}

fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic "Poisson-ish" count: `floor(expected)` plus a Bernoulli
/// draw on the fractional part.
fn sample_count(s: &mut Stream, expected: f64) -> u64 {
    if expected <= 0.0 {
        return 0;
    }
    let base = expected.floor();
    let frac = expected - base;
    base as u64 + u64::from(s.next_f64() < frac)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chaos_plan(seed: u64) -> FaultPlan {
        FaultPlan::generate(seed, 4, FaultSpec::chaos(0.5))
    }

    #[test]
    fn same_seed_same_plan() {
        let a = chaos_plan(7);
        let b = chaos_plan(7);
        assert_eq!(a.fingerprint(), b.fingerprint());
        for src in 0..4 {
            for dst in 0..4 {
                assert_eq!(a.windows(src, dst), b.windows(src, dst));
            }
            assert_eq!(a.straggler_factor(src), b.straggler_factor(src));
        }
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(chaos_plan(1).fingerprint(), chaos_plan(2).fingerprint());
    }

    #[test]
    fn trivial_plan_is_clean() {
        let mut p = FaultPlan::generate(9, 4, FaultSpec::none());
        assert!(p.is_trivial());
        for src in 0..4 {
            for dst in 0..4 {
                assert!(p.windows(src, dst).is_empty());
                assert_eq!(
                    p.link_state(src, dst, SimTime::from_us(10)),
                    LinkState::Up { bw_factor: 1.0 }
                );
            }
            assert_eq!(p.straggler_factor(src), 1.0);
        }
        assert_eq!(p.sample_message(0, 1), MessageFault::None);
        assert!(p.events().is_empty());
    }

    #[test]
    fn chaos_zero_is_none() {
        assert!(FaultSpec::chaos(0.0).is_none());
        assert!(!FaultSpec::chaos(0.3).is_none());
    }

    #[test]
    fn link_state_sees_down_window() {
        let p = chaos_plan(3);
        // Find any down window and probe inside it.
        let mut probed = false;
        for src in 0..4 {
            for dst in 0..4 {
                for w in p.windows(src, dst) {
                    if w.kind == FaultKind::Down && w.end > w.start {
                        let mid = w.start + (w.end - w.start) / 2;
                        match p.link_state(src, dst, mid) {
                            LinkState::Down { up_at } => assert!(up_at >= w.end || up_at > mid),
                            LinkState::Up { .. } => panic!("probe inside down window reported up"),
                        }
                        probed = true;
                    }
                }
            }
        }
        assert!(probed, "chaos(0.5) should schedule at least one flap");
    }

    #[test]
    fn degraded_state_reports_reduced_factor() {
        let p = chaos_plan(5);
        let mut saw_degraded = false;
        for (src, dst) in [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2), (1, 3)] {
            for w in p.windows(src, dst) {
                if let FaultKind::Degraded(f) = w.kind {
                    let mid = w.start + (w.end - w.start) / 2;
                    if let LinkState::Up { bw_factor } = p.link_state(src, dst, mid) {
                        assert!(bw_factor <= f + 1e-12, "factor must compound down");
                        saw_degraded = true;
                    }
                }
            }
        }
        assert!(saw_degraded);
    }

    #[test]
    fn message_sampling_is_per_pair_deterministic() {
        let mut a = chaos_plan(11);
        let mut b = chaos_plan(11);
        // Different interleavings across pairs, same per-pair sequence.
        let mut fa = Vec::new();
        for i in 0..50 {
            fa.push(a.sample_message(0, 1));
            if i % 2 == 0 {
                a.sample_message(2, 3);
            }
        }
        let mut fb = Vec::new();
        for _ in 0..25 {
            b.sample_message(2, 3);
        }
        for _ in 0..50 {
            fb.push(b.sample_message(0, 1));
        }
        assert_eq!(fa, fb, "per-pair streams must not interleave");
    }

    #[test]
    fn drops_and_delays_occur_and_are_recorded() {
        let mut p = FaultPlan::generate(13, 2, FaultSpec::chaos(1.0));
        let mut drops = 0;
        let mut delays = 0;
        for _ in 0..2000 {
            match p.sample_message(0, 1) {
                MessageFault::Drop => drops += 1,
                MessageFault::Delay(j) => {
                    assert!(j >= Dur::from_us(2) && j <= Dur::from_us(20));
                    delays += 1;
                }
                MessageFault::None => {}
            }
        }
        assert!(drops > 0, "2% drop over 2000 messages should fire");
        assert!(delays > drops, "5% delay should outnumber 2% drop");
        assert_eq!(p.events().len(), drops + delays);
    }

    #[test]
    fn fault_fraction_bounds() {
        let p = chaos_plan(17);
        for (src, dst) in [(0, 1), (2, 3)] {
            let f = p.fault_fraction(src, dst, SimTime::ZERO, SimTime::from_ms(200));
            assert!((0.0..=1.0).contains(&f), "fraction {f} out of bounds");
        }
        assert_eq!(
            p.fault_fraction(0, 1, SimTime::from_us(5), SimTime::from_us(5)),
            0.0
        );
    }

    #[test]
    fn fault_fraction_exact_on_known_window() {
        let mut p = FaultPlan::generate(1, 2, FaultSpec::none());
        p.trivial = false;
        p.windows[1] = vec![FaultWindow {
            start: SimTime::from_us(10),
            end: SimTime::from_us(20),
            kind: FaultKind::Down,
        }];
        let f = p.fault_fraction(0, 1, SimTime::ZERO, SimTime::from_us(40));
        assert!((f - 0.25).abs() < 1e-9, "10us of 40us = 0.25, got {f}");
    }

    #[test]
    fn flap_count_monotone() {
        let p = chaos_plan(19);
        let early = p.flap_count(0, 1, SimTime::from_us(100));
        let late = p.flap_count(0, 1, SimTime::from_ms(200));
        assert!(late >= early);
    }

    #[test]
    fn straggler_factors_in_range() {
        let p = FaultPlan::generate(23, 8, FaultSpec::chaos(1.0));
        let mut any = false;
        for dev in 0..8 {
            let f = p.straggler_factor(dev);
            assert!(f == 1.0 || (1.05..=1.5).contains(&f), "factor {f}");
            any |= f > 1.0;
        }
        assert!(any, "25% straggler probability over 8 GPUs should fire");
    }

    #[test]
    fn fabric_error_display_and_helpers() {
        let e = FabricError::LinkDown {
            src: 0,
            dst: 1,
            at: SimTime::from_us(5),
            up_at: SimTime::from_us(9),
        };
        assert!(e.is_retryable());
        assert_eq!(e.observed_at(), SimTime::from_us(5));
        assert!(format!("{e}").contains("0->1"));
        let t = FabricError::Timeout {
            deadline: SimTime::from_us(7),
            completes_at: SimTime::from_us(11),
        };
        assert!(!t.is_retryable());
        assert_eq!(t.observed_at(), SimTime::from_us(7));
        let r = FabricError::RetryExhausted {
            attempts: 3,
            last: Box::new(e.clone()),
        };
        assert_eq!(r.observed_at(), SimTime::from_us(5));
        assert!(format!("{r}").contains("3 attempts"));
        let d = FabricError::MessageDropped {
            src: 1,
            dst: 0,
            at: SimTime::from_us(2),
        };
        assert!(d.is_retryable());
    }

    #[test]
    #[should_panic(expected = "intensity")]
    fn chaos_intensity_out_of_range_panics() {
        let _ = FaultSpec::chaos(1.5);
    }

    #[test]
    fn chaos_never_schedules_device_loss() {
        assert_eq!(FaultSpec::chaos(1.0).device_loss_rate, 0.0);
        let p = FaultPlan::generate(7, 4, FaultSpec::chaos(1.0));
        for dev in 0..4 {
            assert!(p.device_windows(dev).is_empty());
            assert_eq!(p.device_down_until(dev, SimTime::from_ms(1)), None);
            assert_eq!(p.device_error(dev, SimTime::from_ms(1)), None);
        }
    }

    #[test]
    fn storm_adds_device_loss_without_perturbing_link_faults() {
        let chaos = FaultPlan::generate(7, 4, FaultSpec::chaos(0.5));
        let storm = FaultPlan::generate(7, 4, FaultSpec::storm(0.5));
        // Same seed: every link window and straggler factor is identical —
        // the storm is strictly chaos plus shard loss.
        for src in 0..4 {
            for dst in 0..4 {
                assert_eq!(chaos.windows(src, dst), storm.windows(src, dst));
            }
            assert_eq!(chaos.straggler_factor(src), storm.straggler_factor(src));
        }
        let outages: usize = (0..4)
            .map(|d| storm.device_windows(d).len())
            .collect::<Vec<_>>()
            .iter()
            .sum();
        assert!(
            outages > 0,
            "30/s over a 200 ms horizon should schedule outages"
        );
        // Schedules with and without device loss fingerprint differently.
        assert_ne!(chaos.fingerprint(), storm.fingerprint());
        // And the storm itself is deterministic.
        assert_eq!(
            storm.fingerprint(),
            FaultPlan::generate(7, 4, FaultSpec::storm(0.5)).fingerprint()
        );
    }

    #[test]
    fn tiered_with_equal_specs_matches_generate() {
        use crate::LinkSpec;
        // On any topology, identical per-tier specs must reproduce the flat
        // generator bit for bit — the pod fault path is a strict extension.
        for topo in [
            Topology::crossbar(4, LinkSpec::nvlink_v100()),
            Topology::multi_node(2, 2, LinkSpec::nvlink_v100(), LinkSpec::roce()),
        ] {
            let spec = FaultSpec::chaos(0.5);
            let flat = FaultPlan::generate(21, topo.n_gpus(), spec);
            let tiered = FaultPlan::generate_tiered(21, &topo, spec, spec);
            assert_eq!(flat.fingerprint(), tiered.fingerprint());
            for src in 0..topo.n_gpus() {
                for dst in 0..topo.n_gpus() {
                    assert_eq!(flat.windows(src, dst), tiered.windows(src, dst));
                }
                assert_eq!(flat.straggler_factor(src), tiered.straggler_factor(src));
            }
            assert_eq!(flat.is_trivial(), tiered.is_trivial());
        }
    }

    #[test]
    fn tiered_faults_only_hit_the_requested_tier() {
        use crate::LinkSpec;
        let topo = Topology::multi_node(2, 2, LinkSpec::nvlink_v100(), LinkSpec::roce());
        // Clean crossbar, chaotic scale-out tier.
        let p = FaultPlan::generate_tiered(5, &topo, FaultSpec::none(), FaultSpec::chaos(1.0));
        assert!(!p.is_trivial());
        let mut inter_windows = 0;
        for src in 0..4 {
            for dst in 0..4 {
                if src == dst {
                    continue;
                }
                if topo.same_node(src, dst) {
                    assert!(
                        p.windows(src, dst).is_empty(),
                        "intra pair {src}->{dst} must stay clean"
                    );
                } else {
                    inter_windows += p.windows(src, dst).len();
                }
            }
        }
        assert!(inter_windows > 0, "chaos(1.0) must schedule inter windows");
        // The flipped assignment faults only the crossbar.
        let q = FaultPlan::generate_tiered(5, &topo, FaultSpec::chaos(1.0), FaultSpec::none());
        for (src, dst) in [(0usize, 2usize), (1, 3), (2, 0)] {
            assert!(q.windows(src, dst).is_empty());
        }
        assert!(!q.windows(0, 1).is_empty() || !q.windows(2, 3).is_empty());
    }

    #[test]
    fn device_down_until_sees_outage_windows() {
        let p = FaultPlan::generate(3, 4, FaultSpec::storm(1.0));
        let mut probed = false;
        for dev in 0..4 {
            for w in p.device_windows(dev) {
                assert!(w.kind == FaultKind::Down);
                let mid = w.start + (w.end - w.start) / 2;
                let up = p.device_down_until(dev, mid).expect("inside an outage");
                assert!(up >= w.end);
                match p.device_error(dev, mid) {
                    Some(FabricError::DeviceLost { dev: d, at, up_at }) => {
                        assert_eq!(d, dev);
                        assert_eq!(at, mid);
                        assert_eq!(up_at, up);
                        assert!(!FabricError::DeviceLost { dev: d, at, up_at }.is_retryable());
                        assert_eq!(
                            FabricError::DeviceLost { dev: d, at, up_at }.observed_at(),
                            mid
                        );
                    }
                    other => panic!("expected DeviceLost, got {other:?}"),
                }
                probed = true;
            }
            // Monotone outage count, healthy past the horizon.
            assert!(
                p.device_loss_count(dev, SimTime::from_ms(200))
                    >= p.device_loss_count(dev, SimTime::from_us(100))
            );
            assert_eq!(p.device_down_until(dev, SimTime::from_ms(500)), None);
        }
        assert!(probed, "storm(1.0) should schedule at least one outage");
    }
}
