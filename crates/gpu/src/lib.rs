//! # gpusim — a deterministic simulated multi-GPU machine
//!
//! This crate stands in for the 4× V100 NVLink DGX used in the paper's
//! evaluation. It models the three things the paper's results hinge on:
//!
//! 1. **Kernel execution time** — embedding retrieval is memory-bound, so a
//!    kernel's duration is governed by the bytes it moves through HBM, by how
//!    many thread blocks are resident (occupancy), and by a latency floor
//!    when too few blocks are in flight to hide DRAM latency (this floor is
//!    what makes the paper's strong-scaling curve go flat beyond 2 GPUs).
//! 2. **Link-level communication** — every ordered GPU pair has a link with
//!    bandwidth, base latency and a **per-message header cost**; messages are
//!    serialized FIFO per link. Collectives send few large messages; the
//!    PGAS backend sends many 256 B messages spread over the kernel — both
//!    styles fall out of the same link model.
//! 3. **Control-path overheads** — kernel launch, stream synchronization and
//!    collective-call trigger latencies, which dominate at small batch sizes
//!    (paper §III-A, challenge 3).
//!
//! Everything is driven analytically through [`desim`] resources, so runs
//! are deterministic and fast; per-link traffic is recorded into
//! [`desim::TimeSeries`] buckets to regenerate the paper's Figures 7 and 10.
//!
//! ```
//! use gpusim::{Machine, MachineConfig, KernelShape};
//! use desim::SimTime;
//!
//! let mut m = Machine::new(MachineConfig::dgx_v100(2));
//! let run = m.run_kernel(0, KernelShape::memory_bound(1024, 64 * 1024), SimTime::ZERO);
//! let xfer = m.send(0, 1, 1 << 20, 1, run.interval.end);
//! assert!(xfer.end > run.interval.end);
//! ```

#![warn(missing_docs)]

mod fault;
mod kernel;
mod machine;
mod spec;
mod stream;
mod topology;
mod trace;

pub use fault::{
    FabricError, FaultEvent, FaultKind, FaultPlan, FaultSpec, FaultWindow, LinkState, MessageFault,
    RetryPolicy,
};
pub use kernel::{KernelRun, KernelShape};
pub use machine::{Machine, MachineConfig, TrafficStats};
pub use spec::GpuSpec;
pub use stream::{Event, StageChunk, StreamId};
pub use topology::{LinkSpec, NoLink, Topology};
pub use trace::{TraceEvent, TraceLog};
