//! Interconnect topology: which GPU pairs are linked, and how fast.

use desim::Dur;

/// Parameters of one direction of a point-to-point link.
#[derive(Clone, Copy, Debug)]
pub struct LinkSpec {
    /// Sustained bandwidth in bytes/second.
    pub bandwidth: f64,
    /// Base (first-byte) latency.
    pub latency: Dur,
    /// Protocol header/flit overhead charged per message. This is the
    /// paper's "small messages are not bandwidth-efficient" cost: a 256 B
    /// payload with a 32 B header wastes 11% of wire time.
    pub header_bytes: u32,
}

impl LinkSpec {
    /// One direction of an NVLink 2.0 peer pair as provisioned in a 4-V100
    /// DGX: a single 25 GB/s brick per pair of which fine-grained one-sided
    /// store streams sustain ~10 GB/s (calibrated against the paper's
    /// measured phase ratios — see DESIGN.md §4), ~1.3 µs one-sided write
    /// latency, 32 B packet header.
    pub fn nvlink_v100() -> Self {
        LinkSpec {
            bandwidth: 10e9,
            latency: Dur::from_ns(1300),
            header_bytes: 32,
        }
    }

    /// PCIe 3.0 x16 (for contrast experiments): ~12 GB/s, ~2.5 µs.
    pub fn pcie3_x16() -> Self {
        LinkSpec {
            bandwidth: 12e9,
            latency: Dur::from_us(2) + Dur::from_ns(500),
            header_bytes: 24,
        }
    }

    /// An inter-node fabric (IB EDR-class effective rate for small/medium
    /// RDMA writes): 6 GB/s, 4.5 µs, bigger headers. Used by the multi-node
    /// aggregator extension (paper §V).
    pub fn infiniband() -> Self {
        LinkSpec {
            bandwidth: 6e9,
            latency: Dur::from_us(4) + Dur::from_ns(500),
            header_bytes: 64,
        }
    }

    /// A RoCE/IB scale-out NIC as the pod fabric sees it: 5 GB/s sustained
    /// per direction, ~6 µs one-sided write latency, and a large
    /// per-message cost. `header_bytes` here folds the whole per-WQE
    /// overhead (doorbell, WQE fetch, address translation, ACK) into a
    /// byte-equivalent at wire rate: 1024 B ≈ 205 ns/message ≈ a ~5 M msg/s
    /// message-rate ceiling — the header-dominated regime where per-row
    /// one-sided stores stop being bandwidth-efficient (paper §V;
    /// "Demystifying NVSHMEM" inter-node small-message cliffs).
    pub fn roce() -> Self {
        LinkSpec {
            bandwidth: 5e9,
            latency: Dur::from_us(6),
            header_bytes: 1024,
        }
    }

    /// Wire time for a transfer of `payload` bytes split into `n_messages`
    /// messages (headers charged per message).
    pub fn wire_time(&self, payload: u64, n_messages: u64) -> Dur {
        let bytes = payload + n_messages * self.header_bytes as u64;
        Dur::from_secs_f64(bytes as f64 / self.bandwidth)
    }
}

/// A route between two GPUs that does not exist: indices out of range or a
/// self-link. Returned by [`Topology::try_link`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NoLink {
    /// Requested source GPU.
    pub src: usize,
    /// Requested destination GPU.
    pub dst: usize,
}

impl std::fmt::Display for NoLink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "no link from GPU {} to GPU {}", self.src, self.dst)
    }
}

impl std::error::Error for NoLink {}

/// The set of directed links between `n` GPUs.
#[derive(Clone, Debug)]
pub struct Topology {
    n: usize,
    // Row-major [src][dst]; None on the diagonal (no self-link needed).
    links: Vec<Option<LinkSpec>>,
    node_of: Vec<usize>,
}

impl Topology {
    /// A fully connected crossbar of `n` GPUs with identical links —
    /// the paper's NVLink-connected DGX.
    pub fn crossbar(n: usize, link: LinkSpec) -> Self {
        assert!(n >= 1, "topology needs at least one GPU");
        let mut links = vec![None; n * n];
        for s in 0..n {
            for d in 0..n {
                if s != d {
                    links[s * n + d] = Some(link);
                }
            }
        }
        Topology {
            n,
            links,
            node_of: vec![0; n],
        }
    }

    /// `nodes` nodes of `per_node` GPUs each: intra-node pairs use `intra`,
    /// inter-node pairs use `inter`. Used by the multi-node extension.
    pub fn multi_node(nodes: usize, per_node: usize, intra: LinkSpec, inter: LinkSpec) -> Self {
        assert!(nodes >= 1 && per_node >= 1);
        let n = nodes * per_node;
        let node_of: Vec<usize> = (0..n).map(|g| g / per_node).collect();
        let mut links = vec![None; n * n];
        for s in 0..n {
            for d in 0..n {
                if s != d {
                    links[s * n + d] = Some(if node_of[s] == node_of[d] {
                        intra
                    } else {
                        inter
                    });
                }
            }
        }
        Topology { n, links, node_of }
    }

    /// Number of GPUs.
    pub fn n_gpus(&self) -> usize {
        self.n
    }

    /// Node index of a GPU (always 0 in single-node topologies).
    pub fn node_of(&self, gpu: usize) -> usize {
        self.node_of[gpu]
    }

    /// Number of distinct nodes (1 for every single-node topology).
    pub fn nodes(&self) -> usize {
        self.node_of.iter().copied().max().unwrap_or(0) + 1
    }

    /// The gateway GPU of the node containing `gpu`: the lowest-index GPU
    /// in that node. Gateway-routed schemes (hierarchical alltoall, the
    /// PGAS gateway proxy) funnel cross-node traffic through this device.
    pub fn gateway_of(&self, gpu: usize) -> usize {
        let node = self.node_of[gpu];
        self.node_of
            .iter()
            .position(|&n| n == node)
            .expect("gpu's own node exists")
    }

    /// All GPUs in `node`, ascending.
    pub fn node_members(&self, node: usize) -> impl Iterator<Item = usize> + '_ {
        self.node_of
            .iter()
            .enumerate()
            .filter(move |&(_, &n)| n == node)
            .map(|(g, _)| g)
    }

    /// True if both GPUs are in the same node.
    pub fn same_node(&self, a: usize, b: usize) -> bool {
        self.node_of[a] == self.node_of[b]
    }

    /// The directed link from `src` to `dst`, or [`NoLink`] if the pair is
    /// out of range or unconnected (the diagonal) — the fallible lookup the
    /// serving path uses so a malformed route degrades instead of aborting.
    pub fn try_link(&self, src: usize, dst: usize) -> Result<&LinkSpec, NoLink> {
        if src >= self.n || dst >= self.n {
            return Err(NoLink { src, dst });
        }
        self.links[src * self.n + dst]
            .as_ref()
            .ok_or(NoLink { src, dst })
    }

    /// The directed link from `src` to `dst`. Panics on the diagonal or
    /// out-of-range indices — for trusted transfer schedules; serving code
    /// uses [`Topology::try_link`].
    pub fn link(&self, src: usize, dst: usize) -> &LinkSpec {
        assert!(src < self.n && dst < self.n, "GPU index out of range");
        self.try_link(src, dst)
            .unwrap_or_else(|e| panic!("no link from GPU {} to GPU {}", e.src, e.dst))
    }

    /// Iterate all directed pairs `(src, dst)` with `src != dst`.
    pub fn pairs(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        (0..self.n).flat_map(move |s| (0..self.n).filter(move |&d| d != s).map(move |d| (s, d)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_time_charges_headers_per_message() {
        let l = LinkSpec {
            bandwidth: 1e9, // 1 B/ns
            latency: Dur::from_ns(100),
            header_bytes: 32,
        };
        assert_eq!(l.wire_time(1000, 1), Dur::from_ns(1032));
        assert_eq!(l.wire_time(1000, 10), Dur::from_ns(1320));
        // Many small messages cost strictly more wire time than one big one.
        assert!(l.wire_time(1 << 20, 4096) > l.wire_time(1 << 20, 1));
    }

    #[test]
    fn crossbar_links_every_pair() {
        let t = Topology::crossbar(4, LinkSpec::nvlink_v100());
        assert_eq!(t.n_gpus(), 4);
        assert_eq!(t.pairs().count(), 12);
        for (s, d) in t.pairs() {
            assert!(t.link(s, d).bandwidth > 0.0);
            assert!(t.same_node(s, d));
        }
    }

    #[test]
    #[should_panic(expected = "no link")]
    fn self_link_panics() {
        let t = Topology::crossbar(2, LinkSpec::nvlink_v100());
        let _ = t.link(1, 1);
    }

    #[test]
    fn try_link_returns_typed_errors() {
        let t = Topology::crossbar(2, LinkSpec::nvlink_v100());
        assert!(t.try_link(0, 1).is_ok());
        assert_eq!(t.try_link(1, 1).unwrap_err(), NoLink { src: 1, dst: 1 });
        assert_eq!(t.try_link(0, 7).unwrap_err(), NoLink { src: 0, dst: 7 });
        assert_eq!(
            t.try_link(1, 1).unwrap_err().to_string(),
            "no link from GPU 1 to GPU 1"
        );
    }

    #[test]
    fn multi_node_distinguishes_links() {
        let intra = LinkSpec::nvlink_v100();
        let inter = LinkSpec::infiniband();
        let t = Topology::multi_node(2, 2, intra, inter);
        assert_eq!(t.n_gpus(), 4);
        assert_eq!(t.node_of(0), 0);
        assert_eq!(t.node_of(3), 1);
        assert!(t.same_node(0, 1));
        assert!(!t.same_node(1, 2));
        assert_eq!(t.link(0, 1).bandwidth, intra.bandwidth);
        assert_eq!(t.link(0, 2).bandwidth, inter.bandwidth);
        assert_eq!(t.link(3, 0).bandwidth, inter.bandwidth);
    }

    #[test]
    fn presets_ordering() {
        // NVLink beats the inter-node fabric on both axes.
        assert!(LinkSpec::nvlink_v100().bandwidth > LinkSpec::infiniband().bandwidth);
        assert!(LinkSpec::nvlink_v100().latency < LinkSpec::infiniband().latency);
        assert!(LinkSpec::nvlink_v100().latency < LinkSpec::pcie3_x16().latency);
        // The pod NIC is the slowest tier and the most header-dominated.
        assert!(LinkSpec::roce().bandwidth < LinkSpec::infiniband().bandwidth);
        assert!(LinkSpec::roce().latency > LinkSpec::infiniband().latency);
        assert!(LinkSpec::roce().header_bytes > LinkSpec::infiniband().header_bytes);
    }

    #[test]
    fn roce_is_message_rate_limited() {
        // At 256 B payloads most of the wire time is per-message overhead:
        // one coalesced 64 KiB transfer beats 256 separate 256 B messages
        // by more than 4x.
        let l = LinkSpec::roce();
        let flat = l.wire_time(64 << 10, 256);
        let agg = l.wire_time(64 << 10, 1);
        assert!(flat > agg * 4);
    }

    #[test]
    fn nodes_and_gateways() {
        let t = Topology::crossbar(4, LinkSpec::nvlink_v100());
        assert_eq!(t.nodes(), 1);
        for g in 0..4 {
            assert_eq!(t.gateway_of(g), 0);
        }

        let t = Topology::multi_node(3, 4, LinkSpec::nvlink_v100(), LinkSpec::roce());
        assert_eq!(t.nodes(), 3);
        assert_eq!(t.gateway_of(0), 0);
        assert_eq!(t.gateway_of(3), 0);
        assert_eq!(t.gateway_of(4), 4);
        assert_eq!(t.gateway_of(7), 4);
        assert_eq!(t.gateway_of(11), 8);
        assert_eq!(t.node_members(1).collect::<Vec<_>>(), vec![4, 5, 6, 7]);
        // A gateway is always inside its own node.
        for g in 0..12 {
            assert!(t.same_node(g, t.gateway_of(g)));
        }
    }
}
