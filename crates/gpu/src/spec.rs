//! Per-GPU hardware parameters.

use desim::Dur;

/// Hardware parameters of one simulated GPU.
///
/// The constants in the presets are public datasheet numbers; they calibrate
/// the *shape* of the reproduction (who wins and by what factor), not
/// absolute milliseconds on the authors' testbed.
#[derive(Clone, Debug)]
pub struct GpuSpec {
    /// Marketing name, e.g. `"V100-SXM2-32GB"`.
    pub name: &'static str,
    /// Peak HBM bandwidth in bytes/second.
    pub mem_bw: f64,
    /// Device memory capacity in bytes (checked by allocation-planning code).
    pub mem_capacity: u64,
    /// Number of streaming multiprocessors.
    pub sm_count: u32,
    /// Maximum thread blocks resident per SM for our kernel's register/shared
    /// memory footprint.
    pub max_blocks_per_sm: u32,
    /// Number of resident blocks needed to reach peak memory bandwidth.
    /// Below this the kernel is latency-limited.
    pub blocks_to_saturate: u32,
    /// Host-side kernel-launch latency.
    pub kernel_launch: Dur,
    /// `cudaStreamSynchronize` / event-sync overhead.
    pub stream_sync: Dur,
    /// DRAM round-trip latency (the floor for a dependent memory access).
    pub mem_latency: Dur,
    /// Peak FP32 throughput in FLOP/s (used by the MLP cost model).
    pub flops: f64,
    /// Aggregate injection bandwidth of the GPU's NVLink/NIC complex in
    /// bytes/s: the ceiling on this GPU's *total* outbound traffic across
    /// all peers at once (individual links are additionally limited by
    /// their own [`crate::LinkSpec::bandwidth`]).
    pub inj_bw: f64,
    /// Last-level (L2) cache capacity in bytes. Hot embedding rows that fit
    /// here are served without touching HBM — what makes skewed (Zipf)
    /// index streams faster than uniform ones.
    pub l2_bytes: u64,
}

impl GpuSpec {
    /// NVIDIA V100-SXM2-32GB (the paper's GPU).
    ///
    /// 900 GB/s HBM2, 80 SMs, 32 GB, ~15.7 TFLOP/s FP32. The occupancy and
    /// overhead constants are typical measured values for a memory-bound
    /// gather kernel: ~8 µs launch, ~10 µs stream sync, ~450 ns DRAM
    /// round-trip, peak bandwidth reached around 960 resident blocks
    /// (12 blocks/SM × 80 SMs) — below that a gather kernel cannot keep
    /// enough loads in flight to hide DRAM latency.
    pub fn v100() -> Self {
        GpuSpec {
            name: "V100-SXM2-32GB",
            mem_bw: 900e9,
            mem_capacity: 32 << 30,
            sm_count: 80,
            max_blocks_per_sm: 16,
            blocks_to_saturate: 960,
            kernel_launch: Dur::from_us(8),
            stream_sync: Dur::from_us(10),
            mem_latency: Dur::from_ns(450),
            flops: 15.7e12,
            inj_bw: 15e9,
            l2_bytes: 6 << 20,
        }
    }

    /// NVIDIA A100-SXM4-80GB, for what-if runs beyond the paper's testbed.
    pub fn a100() -> Self {
        GpuSpec {
            name: "A100-SXM4-80GB",
            mem_bw: 2.0e12,
            mem_capacity: 80 << 30,
            sm_count: 108,
            max_blocks_per_sm: 16,
            blocks_to_saturate: 864,
            kernel_launch: Dur::from_us(7),
            stream_sync: Dur::from_us(9),
            mem_latency: Dur::from_ns(400),
            flops: 19.5e12,
            inj_bw: 30e9,
            l2_bytes: 40 << 20,
        }
    }

    /// Maximum resident thread blocks across the device.
    pub fn max_resident_blocks(&self) -> u32 {
        self.sm_count * self.max_blocks_per_sm
    }

    /// Occupancy-scaled effective memory bandwidth (bytes/s) when `resident`
    /// blocks are in flight.
    pub fn effective_bw(&self, resident: u32) -> f64 {
        let occ = (resident as f64 / self.blocks_to_saturate as f64).min(1.0);
        self.mem_bw * occ
    }

    /// HBM-capacity accounting for a hot-row replication cache: the maximum
    /// rows *per remote table* that fit in device memory left over after
    /// `resident_bytes` of locally sharded weights, when `n_remote_tables`
    /// tables each replicate the same row count at `row_bytes` per row.
    /// Returns 0 when the shard alone (over)fills the device.
    pub fn replica_rows_capacity(
        &self,
        resident_bytes: u64,
        row_bytes: u64,
        n_remote_tables: u64,
    ) -> u64 {
        if row_bytes == 0 || n_remote_tables == 0 {
            return u64::MAX;
        }
        let free = self.mem_capacity.saturating_sub(resident_bytes);
        free / (row_bytes * n_remote_tables)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_sane() {
        for spec in [GpuSpec::v100(), GpuSpec::a100()] {
            assert!(spec.mem_bw > 1e11);
            assert!(spec.mem_capacity >= 16 << 30);
            assert!(spec.max_resident_blocks() >= spec.blocks_to_saturate);
            assert!(spec.flops > 1e12);
            assert!(!spec.kernel_launch.is_zero());
        }
    }

    #[test]
    fn replica_capacity_accounts_for_resident_weights() {
        let v = GpuSpec::v100();
        // The paper's weak-scaling shard: 64 tables × 1M rows × 256 B =
        // ~16.4 GB resident; 192 remote tables at 256 B/row leave room for
        // well over the experiments' largest 96 k-row replica set.
        let resident = 64 * 1_000_000 * 256u64;
        let cap = v.replica_rows_capacity(resident, 256, 192);
        assert!(cap > 96 * 1024, "capacity {cap} rows per remote table");
        // A replica set that exactly fills the remainder is admitted; one
        // row more per table would not fit.
        assert!(cap * 256 * 192 <= v.mem_capacity - resident);
        assert!((cap + 1) * 256 * 192 > v.mem_capacity - resident);
        // An overfull shard leaves no replica room at all.
        assert_eq!(v.replica_rows_capacity(v.mem_capacity + 1, 256, 192), 0);
        // No remote tables → nothing to bound.
        assert_eq!(v.replica_rows_capacity(resident, 256, 0), u64::MAX);
    }

    #[test]
    fn effective_bw_scales_with_occupancy() {
        let v = GpuSpec::v100();
        assert_eq!(v.effective_bw(v.blocks_to_saturate), v.mem_bw);
        assert_eq!(v.effective_bw(v.blocks_to_saturate * 2), v.mem_bw);
        let half = v.effective_bw(v.blocks_to_saturate / 2);
        assert!((half - v.mem_bw / 2.0).abs() / v.mem_bw < 1e-9);
        assert_eq!(v.effective_bw(0), 0.0);
    }
}
