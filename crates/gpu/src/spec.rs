//! Per-GPU hardware parameters.

use desim::Dur;

/// Hardware parameters of one simulated GPU.
///
/// The constants in the presets are public datasheet numbers; they calibrate
/// the *shape* of the reproduction (who wins and by what factor), not
/// absolute milliseconds on the authors' testbed.
#[derive(Clone, Debug)]
pub struct GpuSpec {
    /// Marketing name, e.g. `"V100-SXM2-32GB"`.
    pub name: &'static str,
    /// Peak HBM bandwidth in bytes/second.
    pub mem_bw: f64,
    /// Device memory capacity in bytes (checked by allocation-planning code).
    pub mem_capacity: u64,
    /// Number of streaming multiprocessors.
    pub sm_count: u32,
    /// Maximum thread blocks resident per SM for our kernel's register/shared
    /// memory footprint.
    pub max_blocks_per_sm: u32,
    /// Number of resident blocks needed to reach peak memory bandwidth.
    /// Below this the kernel is latency-limited.
    pub blocks_to_saturate: u32,
    /// Host-side kernel-launch latency.
    pub kernel_launch: Dur,
    /// `cudaStreamSynchronize` / event-sync overhead.
    pub stream_sync: Dur,
    /// DRAM round-trip latency (the floor for a dependent memory access).
    pub mem_latency: Dur,
    /// Peak FP32 throughput in FLOP/s (used by the MLP cost model).
    pub flops: f64,
    /// Aggregate injection bandwidth of the GPU's NVLink/NIC complex in
    /// bytes/s: the ceiling on this GPU's *total* outbound traffic across
    /// all peers at once (individual links are additionally limited by
    /// their own [`crate::LinkSpec::bandwidth`]).
    pub inj_bw: f64,
    /// Last-level (L2) cache capacity in bytes. Hot embedding rows that fit
    /// here are served without touching HBM — what makes skewed (Zipf)
    /// index streams faster than uniform ones.
    pub l2_bytes: u64,
}

impl GpuSpec {
    /// NVIDIA V100-SXM2-32GB (the paper's GPU).
    ///
    /// 900 GB/s HBM2, 80 SMs, 32 GB, ~15.7 TFLOP/s FP32. The occupancy and
    /// overhead constants are typical measured values for a memory-bound
    /// gather kernel: ~8 µs launch, ~10 µs stream sync, ~450 ns DRAM
    /// round-trip, peak bandwidth reached around 960 resident blocks
    /// (12 blocks/SM × 80 SMs) — below that a gather kernel cannot keep
    /// enough loads in flight to hide DRAM latency.
    pub fn v100() -> Self {
        GpuSpec {
            name: "V100-SXM2-32GB",
            mem_bw: 900e9,
            mem_capacity: 32 << 30,
            sm_count: 80,
            max_blocks_per_sm: 16,
            blocks_to_saturate: 960,
            kernel_launch: Dur::from_us(8),
            stream_sync: Dur::from_us(10),
            mem_latency: Dur::from_ns(450),
            flops: 15.7e12,
            inj_bw: 15e9,
            l2_bytes: 6 << 20,
        }
    }

    /// NVIDIA A100-SXM4-80GB, for what-if runs beyond the paper's testbed.
    pub fn a100() -> Self {
        GpuSpec {
            name: "A100-SXM4-80GB",
            mem_bw: 2.0e12,
            mem_capacity: 80 << 30,
            sm_count: 108,
            max_blocks_per_sm: 16,
            blocks_to_saturate: 864,
            kernel_launch: Dur::from_us(7),
            stream_sync: Dur::from_us(9),
            mem_latency: Dur::from_ns(400),
            flops: 19.5e12,
            inj_bw: 30e9,
            l2_bytes: 40 << 20,
        }
    }

    /// Maximum resident thread blocks across the device.
    pub fn max_resident_blocks(&self) -> u32 {
        self.sm_count * self.max_blocks_per_sm
    }

    /// Occupancy-scaled effective memory bandwidth (bytes/s) when `resident`
    /// blocks are in flight.
    pub fn effective_bw(&self, resident: u32) -> f64 {
        let occ = (resident as f64 / self.blocks_to_saturate as f64).min(1.0);
        self.mem_bw * occ
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_sane() {
        for spec in [GpuSpec::v100(), GpuSpec::a100()] {
            assert!(spec.mem_bw > 1e11);
            assert!(spec.mem_capacity >= 16 << 30);
            assert!(spec.max_resident_blocks() >= spec.blocks_to_saturate);
            assert!(spec.flops > 1e12);
            assert!(!spec.kernel_launch.is_zero());
        }
    }

    #[test]
    fn effective_bw_scales_with_occupancy() {
        let v = GpuSpec::v100();
        assert_eq!(v.effective_bw(v.blocks_to_saturate), v.mem_bw);
        assert_eq!(v.effective_bw(v.blocks_to_saturate * 2), v.mem_bw);
        let half = v.effective_bw(v.blocks_to_saturate / 2);
        assert!((half - v.mem_bw / 2.0).abs() / v.mem_bw < 1e-9);
        assert_eq!(v.effective_bw(0), 0.0);
    }
}
