//! The machine: devices + fabric + measurement.

use desim::{Dur, Histogram, Interval, Resource, SimTime, TimeSeries};
use telemetry::causal::{BlameCategory, Lane, SpanGraph};
use telemetry::Registry;

use crate::fault::{FabricError, FaultKind, FaultPlan, LinkState, MessageFault, RetryPolicy};
use crate::{GpuSpec, KernelRun, KernelShape, LinkSpec, Topology};

/// Everything needed to instantiate a [`Machine`].
#[derive(Clone, Debug)]
pub struct MachineConfig {
    /// Per-device hardware parameters (one entry per GPU).
    pub specs: Vec<GpuSpec>,
    /// Interconnect between the devices.
    pub topology: Topology,
    /// Bucket width for the per-link traffic time series (Figures 7/10).
    pub traffic_bucket: Dur,
}

impl MachineConfig {
    /// The paper's testbed: `n` V100s on an NVLink crossbar.
    pub fn dgx_v100(n: usize) -> Self {
        MachineConfig {
            specs: vec![GpuSpec::v100(); n],
            topology: Topology::crossbar(n, LinkSpec::nvlink_v100()),
            traffic_bucket: Dur::from_us(50),
        }
    }

    /// A multi-node V100 cluster (NVLink within a node, InfiniBand across)
    /// for the paper's §V multi-node extension.
    pub fn multi_node_v100(nodes: usize, per_node: usize) -> Self {
        MachineConfig {
            specs: vec![GpuSpec::v100(); nodes * per_node],
            topology: Topology::multi_node(
                nodes,
                per_node,
                LinkSpec::nvlink_v100(),
                LinkSpec::infiniband(),
            ),
            traffic_bucket: Dur::from_us(50),
        }
    }

    /// A scale-out pod of V100 nodes: NVLink crossbar within a node, a
    /// RoCE/IB NIC tier across nodes ([`LinkSpec::roce`] — lower bandwidth,
    /// higher latency, and a steep per-message cost). The EXT-11 execution
    /// fabric: unlike `multi_node_v100`'s analytic IB preset, this tier is
    /// message-rate-limited, which is where flat per-row PGAS stores invert.
    pub fn pod_v100(nodes: usize, per_node: usize) -> Self {
        MachineConfig {
            specs: vec![GpuSpec::v100(); nodes * per_node],
            topology: Topology::multi_node(
                nodes,
                per_node,
                LinkSpec::nvlink_v100(),
                LinkSpec::roce(),
            ),
            traffic_bucket: Dur::from_us(50),
        }
    }

    /// Override the traffic-series bucket width.
    pub fn with_traffic_bucket(mut self, bucket: Dur) -> Self {
        self.traffic_bucket = bucket;
        self
    }
}

/// Aggregate communication statistics for a run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TrafficStats {
    /// Payload bytes placed on any wire.
    pub payload_bytes: u64,
    /// Header bytes charged (per-message protocol overhead).
    pub header_bytes: u64,
    /// Number of messages.
    pub messages: u64,
}

impl TrafficStats {
    /// Fraction of wire bytes that were protocol overhead.
    pub fn header_overhead(&self) -> f64 {
        let total = self.payload_bytes + self.header_bytes;
        if total == 0 {
            0.0
        } else {
            self.header_bytes as f64 / total as f64
        }
    }
}

/// A deterministic simulated multi-GPU machine.
///
/// All operations take explicit "ready" times and return the interval the
/// operation occupied, so higher layers can compose arbitrary dependency
/// DAGs. Per-device default streams serialize kernels; per-ordered-pair
/// links serialize transfers FIFO.
pub struct Machine {
    cfg: MachineConfig,
    /// Next-free time of each device's default stream.
    streams: Vec<SimTime>,
    /// Auxiliary compute streams per device ([`Machine::add_stream`]).
    /// Each serializes its own kernels and runs concurrently with the
    /// default stream; empty unless a scheduler asks for them, so existing
    /// single-stream schedules never touch this path.
    aux_streams: Vec<Vec<Resource>>,
    /// One serialized resource per ordered pair, indexed `src * n + dst`.
    links: Vec<Resource>,
    /// Per-device injection port (the GPU's whole NVLink/NIC complex).
    injection: Vec<Resource>,
    /// Per-node egress NIC (the node's HCA): inter-node transfers from all
    /// GPUs of a node additionally serialize through it, making cross-node
    /// bandwidth a *node* resource rather than a per-pair resource.
    /// Intra-node transfers never touch it, and a node with a single GPU
    /// sees timing identical to the plain per-pair link (the NIC and link
    /// horizons coincide).
    nics: Vec<Resource>,
    /// Payload bytes on the wire over time, per ordered pair.
    traffic: Vec<TimeSeries>,
    /// Latest send-completion per source device (for PGAS `quiet`).
    sent_upto: Vec<SimTime>,
    msg_sizes: Histogram,
    stats: TrafficStats,
    horizon: SimTime,
    trace: Option<crate::TraceLog>,
    /// Installed fault schedule, if any. A trivial plan (all-zero spec) is
    /// treated exactly like no plan: every fault code path is bypassed.
    faults: Option<FaultPlan>,
    /// Opt-in metrics registry (disabled by default: recording methods
    /// short-circuit on one branch and never allocate).
    metrics: Registry,
    /// Opt-in causal span graph for critical-path blame attribution
    /// (EXT-16). Like telemetry: `None` by default, every hook is one
    /// branch, and recording never perturbs simulated timing.
    blame: Option<SpanGraph>,
}

impl Machine {
    /// Build a machine from a config. Panics if the spec count does not
    /// match the topology.
    pub fn new(cfg: MachineConfig) -> Self {
        let n = cfg.topology.n_gpus();
        assert_eq!(
            cfg.specs.len(),
            n,
            "got {} GPU specs for a {}-GPU topology",
            cfg.specs.len(),
            n
        );
        let bucket = cfg.traffic_bucket;
        Machine {
            streams: vec![SimTime::ZERO; n],
            aux_streams: vec![Vec::new(); n],
            links: vec![Resource::new(); n * n],
            injection: vec![Resource::new(); n],
            nics: vec![Resource::new(); cfg.topology.nodes()],
            traffic: (0..n * n).map(|_| TimeSeries::new(bucket)).collect(),
            sent_upto: vec![SimTime::ZERO; n],
            msg_sizes: Histogram::new(),
            stats: TrafficStats::default(),
            horizon: SimTime::ZERO,
            trace: None,
            faults: None,
            metrics: Registry::disabled(),
            blame: None,
            cfg,
        }
    }

    /// Start recording telemetry (counters, per-link busy/stall timelines,
    /// message-size histograms, …) into an opt-in [`Registry`], with
    /// timeline buckets matching the machine's `traffic_bucket`. Telemetry
    /// never perturbs simulated timing; with it off (the default) the hot
    /// paths do not allocate.
    pub fn enable_telemetry(&mut self) {
        self.metrics = Registry::enabled(self.cfg.traffic_bucket);
    }

    /// The metrics registry (disabled unless
    /// [`Machine::enable_telemetry`] was called).
    pub fn metrics(&self) -> &Registry {
        &self.metrics
    }

    /// Mutable registry access for higher layers (PGAS runtime,
    /// collectives, retrieval backends, serving) recording their own
    /// metrics against this machine's clock.
    pub fn metrics_mut(&mut self) -> &mut Registry {
        &mut self.metrics
    }

    /// Start recording every billed interval (kernel, wire, NIC, retry
    /// backoff, …) into a causal [`SpanGraph`] for critical-path blame
    /// attribution. Opt-in like telemetry: off by default, and enabling it
    /// never perturbs simulated timing.
    pub fn enable_blame(&mut self) {
        self.blame = Some(SpanGraph::new());
    }

    /// Whether blame recording is active.
    #[inline]
    pub fn blame_enabled(&self) -> bool {
        self.blame.is_some()
    }

    /// The recorded span graph, if [`Machine::enable_blame`] was called.
    pub fn blame(&self) -> Option<&SpanGraph> {
        self.blame.as_ref()
    }

    /// Mutable span-graph access for the layers that know the causality
    /// the machine cannot see (executors recording sync fences, the PGAS
    /// gateway recording staging spans, serving stamping trace ids).
    pub fn blame_mut(&mut self) -> Option<&mut SpanGraph> {
        self.blame.as_mut()
    }

    /// Id of the most recently recorded blame span, if any.
    pub fn blame_last_span(&self) -> Option<usize> {
        self.blame.as_ref().and_then(|b| b.last_span())
    }

    /// Render every closed batch's critical path onto a `blame` trace
    /// track: one span per path segment, named by its category. Requires
    /// both [`Machine::enable_trace`] and [`Machine::enable_blame`];
    /// otherwise a no-op. Call once, after the run, before exporting.
    pub fn blame_trace_lanes(&mut self) {
        let Some(trace) = self.trace.as_mut() else {
            return;
        };
        let Some(blame) = self.blame.as_ref() else {
            return;
        };
        for (idx, b) in blame.batches().iter().enumerate() {
            for s in b.segments.iter().filter(|s| s.end > s.start) {
                trace.record(
                    format!("blame.b{idx}"),
                    s.cat.label().to_string(),
                    Interval {
                        start: s.start,
                        end: s.end,
                    },
                );
            }
        }
    }

    /// Install a fault schedule. Panics if the plan was generated for a
    /// different GPU count. Installing a trivial plan keeps the machine on
    /// the exact fault-free timing path.
    pub fn install_faults(&mut self, plan: FaultPlan) {
        assert_eq!(
            plan.n_gpus(),
            self.n_gpus(),
            "fault plan generated for {} GPUs, machine has {}",
            plan.n_gpus(),
            self.n_gpus()
        );
        if self.trace.is_some() {
            Self::trace_fault_windows(&mut self.trace, &plan);
        }
        self.faults = Some(plan);
    }

    /// The installed fault plan, if any.
    pub fn faults(&self) -> Option<&FaultPlan> {
        self.faults.as_ref()
    }

    /// True if a non-trivial fault plan is installed.
    fn faults_active(&self) -> bool {
        self.faults.as_ref().is_some_and(|p| !p.is_trivial())
    }

    /// Straggler slowdown factor for `dev` (1.0 when healthy or no plan).
    pub fn straggler_factor(&self, dev: usize) -> f64 {
        match &self.faults {
            Some(p) if !p.is_trivial() => p.straggler_factor(dev),
            _ => 1.0,
        }
    }

    /// If `dev` is inside a whole-device outage window at `at`, the instant
    /// it recovers; `None` when healthy or no plan is installed. Resilient
    /// callers poll this before a batch and serve the lost shard from
    /// hot-cache replicas or the degradation fill.
    pub fn device_down_until(&self, dev: usize, at: SimTime) -> Option<SimTime> {
        match &self.faults {
            Some(p) if !p.is_trivial() => p.device_down_until(dev, at),
            _ => None,
        }
    }

    /// The [`FabricError::DeviceLost`] a fallible caller observes touching
    /// `dev` at `at`, if the device is inside an outage window.
    pub fn device_error(&self, dev: usize, at: SimTime) -> Option<FabricError> {
        match &self.faults {
            Some(p) if !p.is_trivial() => p.device_error(dev, at),
            _ => None,
        }
    }

    /// Fraction of `[start, end)` during which the directed link sits inside
    /// a scheduled fault window. Zero when no plan is installed. Feeds the
    /// fault column of the fig7/fig10 traffic CSVs.
    pub fn fault_fraction(&self, src: usize, dst: usize, start: SimTime, end: SimTime) -> f64 {
        match &self.faults {
            Some(p) if !p.is_trivial() => p.fault_fraction(src, dst, start, end),
            _ => 0.0,
        }
    }

    fn trace_fault_windows(trace: &mut Option<crate::TraceLog>, plan: &FaultPlan) {
        let Some(t) = trace else { return };
        if plan.is_trivial() {
            return;
        }
        for src in 0..plan.n_gpus() {
            for dst in 0..plan.n_gpus() {
                for w in plan.windows(src, dst) {
                    let name = match w.kind {
                        FaultKind::Down => "link down".to_string(),
                        FaultKind::Degraded(f) => format!("degraded {:.0}%", f * 100.0),
                    };
                    t.record(
                        format!("fault{src}->{dst}"),
                        name,
                        Interval {
                            start: w.start,
                            end: w.end,
                        },
                    );
                }
            }
        }
    }

    /// Start recording every kernel and transfer into a [`crate::TraceLog`]
    /// (export with [`Machine::trace`] → `to_chrome_json`). Intended for
    /// small runs — tracing records one span per message batch.
    pub fn enable_trace(&mut self) {
        self.trace = Some(crate::TraceLog::new());
        if let Some(plan) = self.faults.take() {
            Self::trace_fault_windows(&mut self.trace, &plan);
            self.faults = Some(plan);
        }
    }

    /// The recorded trace, if tracing was enabled.
    pub fn trace(&self) -> Option<&crate::TraceLog> {
        self.trace.as_ref()
    }

    /// Mutable trace access, for higher layers recording their own spans
    /// or flow arrows (e.g. tying a remote put to its pooled write).
    pub fn trace_mut(&mut self) -> Option<&mut crate::TraceLog> {
        self.trace.as_mut()
    }

    /// Sample the telemetry registry's per-link timelines into `"ph":"C"`
    /// counter tracks on the trace: one `utilization` series and one
    /// `queue depth` series per directed link. Requires both
    /// [`Machine::enable_trace`] and [`Machine::enable_telemetry`];
    /// otherwise a no-op. Call once, after the run, before exporting.
    pub fn trace_counter_tracks(&mut self) {
        let Some(trace) = self.trace.as_mut() else {
            return;
        };
        if !self.metrics.is_enabled() {
            return;
        }
        let bucket_ns = self.metrics.bucket().as_ns() as f64;
        for (key, ts) in self.metrics.timelines_named("link_busy_ns") {
            let track = format!("link{}->{}", key.i, key.j);
            for (t, v) in ts.points() {
                trace.record_counter(&track, "utilization", t, v / bucket_ns);
            }
        }
        for (key, ts) in self.metrics.timelines_named("link_stall_ns") {
            let track = format!("link{}->{}", key.i, key.j);
            for (t, v) in ts.points() {
                trace.record_counter(&track, "queue depth", t, v / bucket_ns);
            }
        }
    }

    /// Number of GPUs.
    pub fn n_gpus(&self) -> usize {
        self.cfg.topology.n_gpus()
    }

    /// Hardware spec of device `dev`.
    pub fn spec(&self, dev: usize) -> &GpuSpec {
        &self.cfg.specs[dev]
    }

    /// The interconnect topology.
    pub fn topology(&self) -> &Topology {
        &self.cfg.topology
    }

    /// Launch `shape` on `dev`'s default stream, not before `ready`.
    /// Pays the launch overhead, then executes the wave model.
    pub fn run_kernel(&mut self, dev: usize, shape: KernelShape, ready: SimTime) -> KernelRun {
        let slow = self.straggler_factor(dev);
        let spec = &self.cfg.specs[dev];
        let start = self.streams[dev].max(ready) + spec.kernel_launch;
        let run = KernelRun::wave_model_scaled(&shape, spec, start, slow);
        let launch = spec.kernel_launch;
        self.streams[dev] = run.interval.end;
        self.bump(run.interval.end);
        if let Some(b) = &mut self.blame {
            let (cat, cause) = (b.kind(), b.cause());
            b.record(
                cat,
                Lane::Gpu(dev as u32),
                ready + launch,
                run.interval.start,
                run.interval.end,
                cause,
                false,
            );
        }
        if self.metrics.is_enabled() {
            self.metrics.incr("kernels_launched", dev as u32, 0);
            self.metrics.span(
                "gpu_busy_ns",
                dev as u32,
                0,
                run.interval.start,
                run.interval.end,
            );
        }
        if let Some(t) = &mut self.trace {
            t.record(
                format!("gpu{dev}"),
                format!("kernel({} blk)", shape.blocks),
                run.interval,
            );
        }
        run
    }

    /// Like [`Machine::run_kernel`] but with an explicit per-block duration
    /// list (used when block costs vary, e.g. sampled pooling factors).
    /// Blocks are dispatched in order onto `resident` wave slots.
    pub fn run_kernel_varied(
        &mut self,
        dev: usize,
        block_durations: &[Dur],
        ready: SimTime,
    ) -> KernelRun {
        let slow = self.straggler_factor(dev);
        let spec = &self.cfg.specs[dev];
        let start = self.streams[dev].max(ready) + spec.kernel_launch;
        let launch = spec.kernel_launch;
        if block_durations.is_empty() {
            self.bump(start);
            self.streams[dev] = start;
            if let Some(b) = &mut self.blame {
                let (cat, cause) = (b.kind(), b.cause());
                b.record(
                    cat,
                    Lane::Gpu(dev as u32),
                    ready + launch,
                    start,
                    start,
                    cause,
                    false,
                );
            }
            return KernelRun {
                interval: Interval { start, end: start },
                block_ends: Vec::new(),
                resident: 1,
            };
        }
        let resident = crate::KernelShape::effective_resident(
            block_durations.len() as u64,
            spec.max_resident_blocks(),
        );
        // Greedy earliest-slot dispatch, like the hardware's block scheduler.
        let mut slots = desim::MultiResource::new(resident as usize);
        let mut block_ends = Vec::with_capacity(block_durations.len());
        for &d in block_durations {
            // Straggler scaling only when active: factor 1.0 must not take
            // the float path, so healthy runs stay bit-identical.
            let d = if slow != 1.0 { d * slow } else { d };
            let iv = slots.acquire(start, d);
            block_ends.push(iv.end);
        }
        let end = slots.all_free();
        self.streams[dev] = end;
        self.bump(end);
        let interval = Interval { start, end };
        if let Some(b) = &mut self.blame {
            let (cat, cause) = (b.kind(), b.cause());
            b.record(
                cat,
                Lane::Gpu(dev as u32),
                ready + launch,
                start,
                end,
                cause,
                false,
            );
        }
        if self.metrics.is_enabled() {
            self.metrics.incr("kernels_launched", dev as u32, 0);
            self.metrics.span("gpu_busy_ns", dev as u32, 0, start, end);
        }
        if let Some(t) = &mut self.trace {
            t.record(
                format!("gpu{dev}"),
                format!("kernel({} blk)", block_durations.len()),
                interval,
            );
        }
        KernelRun {
            interval,
            block_ends,
            resident,
        }
    }

    /// Create one auxiliary compute stream on `dev` (the CUDA analogue of
    /// `cudaStreamCreate`). Kernels issued on it via
    /// [`Machine::run_on_stream`] / [`Machine::run_chunked_on`] serialize
    /// among themselves but overlap the default stream and every other
    /// stream. Trace spans land on their own `gpu{dev}.s{idx}` lane.
    pub fn add_stream(&mut self, dev: usize) -> crate::StreamId {
        let idx = self.aux_streams[dev].len();
        self.aux_streams[dev].push(Resource::new());
        crate::StreamId { dev, idx }
    }

    /// Instant stream `s` becomes free for new work.
    pub fn stream_free_at(&self, s: crate::StreamId) -> SimTime {
        self.aux_streams[s.dev][s.idx].free_at()
    }

    /// Total kernel-execution time issued on stream `s` (gaps excluded) —
    /// the numerator of a stream-occupancy / pipeline-bubble metric.
    pub fn stream_busy_time(&self, s: crate::StreamId) -> Dur {
        self.aux_streams[s.dev][s.idx].busy_time()
    }

    /// Launch one kernel of duration `dur` on auxiliary stream `s`, not
    /// before `gate` fires. Pays the launch overhead like every default-
    /// stream kernel, honours straggler scaling, and serializes behind
    /// whatever the stream is already running.
    pub fn run_on_stream(
        &mut self,
        s: crate::StreamId,
        label: &'static str,
        dur: Dur,
        gate: crate::Event,
    ) -> Interval {
        let slow = self.straggler_factor(s.dev);
        let d = if slow != 1.0 { dur * slow } else { dur };
        let launch = self.cfg.specs[s.dev].kernel_launch;
        let res = &mut self.aux_streams[s.dev][s.idx];
        let begin = res.free_at().max(gate.when()) + launch;
        let iv = res.acquire(begin, d);
        self.note_stream_kernel(s, label, iv, gate.when() + launch);
        iv
    }

    /// Launch one *persistent* kernel on stream `s` whose thread blocks
    /// consume `chunks` in order, each chunk polling until its gate event
    /// has fired (the fused-communication consumer pattern: interaction
    /// blocks spin on the arrival flags of the embedding rows they read).
    /// One launch overhead is paid for the whole kernel; chunk `c` then
    /// executes at `max(end of chunk c-1, gate_c)`. Returns the kernel's
    /// overall interval. Gaps between chunks are *not* billed to
    /// [`Machine::stream_busy_time`] — they are exactly the pipeline
    /// bubbles the occupancy metric exists to expose.
    pub fn run_chunked_on(
        &mut self,
        s: crate::StreamId,
        chunks: &[crate::StageChunk],
        gate: crate::Event,
    ) -> Interval {
        let slow = self.straggler_factor(s.dev);
        let launch = self.cfg.specs[s.dev].kernel_launch;
        let begin = self.aux_streams[s.dev][s.idx].free_at().max(gate.when()) + launch;
        if chunks.is_empty() {
            let iv = self.aux_streams[s.dev][s.idx].acquire(begin, Dur::ZERO);
            self.bump(iv.end);
            return iv;
        }
        let mut first: Option<SimTime> = None;
        let mut cursor = begin;
        for c in chunks {
            let d = if slow != 1.0 { c.dur * slow } else { c.dur };
            let iv = self.aux_streams[s.dev][s.idx].acquire(cursor.max(c.gate.when()), d);
            // `ready = cursor`: the gap a gate opens between the previous
            // chunk's end and this one's start is a pipeline bubble.
            self.note_stream_kernel(s, c.label, iv, cursor);
            first.get_or_insert(iv.start);
            cursor = iv.end;
        }
        Interval {
            start: first.expect("non-empty chunk list"),
            end: cursor,
        }
    }

    /// Shared bookkeeping for auxiliary-stream kernels: horizon, the
    /// `stream_busy_ns` occupancy timeline (labelled `(dev, stream)`), the
    /// `gpu{dev}.s{idx}` trace lane, and (when blame is on) a stream-lane
    /// span whose ready→start gap is the pipeline bubble ahead of it.
    fn note_stream_kernel(
        &mut self,
        s: crate::StreamId,
        label: &str,
        iv: Interval,
        ready: SimTime,
    ) {
        self.bump(iv.end);
        if let Some(b) = &mut self.blame {
            let (cat, cause) = (b.kind(), b.cause());
            b.record(
                cat,
                Lane::Stream(s.dev as u32, s.idx as u32),
                ready,
                iv.start,
                iv.end,
                cause,
                false,
            );
        }
        if self.metrics.is_enabled() {
            self.metrics
                .incr("stream_kernels", s.dev as u32, s.idx as u32);
            self.metrics.span(
                "stream_busy_ns",
                s.dev as u32,
                s.idx as u32,
                iv.start,
                iv.end,
            );
        }
        if let Some(t) = &mut self.trace {
            t.record(format!("gpu{}.s{}", s.dev, s.idx), label.to_string(), iv);
        }
    }

    /// Transfer `payload` bytes from `src` to `dst` as `n_messages` messages,
    /// entering the wire no earlier than `ready` (+ link latency). The link
    /// serializes transfers FIFO in call order; the source's injection port
    /// additionally caps its aggregate outbound rate across all peers.
    pub fn send(
        &mut self,
        src: usize,
        dst: usize,
        payload: u64,
        n_messages: u64,
        ready: SimTime,
    ) -> Interval {
        self.send_throttled(src, dst, payload, n_messages, ready, 1.0)
    }

    /// [`Machine::send`] with a wire-efficiency factor in `(0, 1]`: the
    /// transfer's link time is divided by `efficiency`. Collective libraries
    /// use this to model protocol/staging overhead (e.g. NCCL's internal
    /// buffer copies) that one-sided stores do not pay.
    pub fn send_throttled(
        &mut self,
        src: usize,
        dst: usize,
        payload: u64,
        n_messages: u64,
        ready: SimTime,
        efficiency: f64,
    ) -> Interval {
        assert_ne!(src, dst, "send to self does not touch the fabric");
        assert!(
            efficiency > 0.0 && efficiency <= 1.0,
            "efficiency {efficiency} out of (0, 1]"
        );
        let link = *self.cfg.topology.link(src, dst);
        let n = self.n_gpus();
        let wire = link.wire_time(payload, n_messages) * (1.0 / efficiency);
        // The injection port admits the bytes at the GPU's aggregate rate;
        // the link then streams them at its own (slower or contended) rate.
        let wire_bytes = payload + n_messages * link.header_bytes as u64;
        let inj_time = Dur::from_secs_f64(wire_bytes as f64 / self.cfg.specs[src].inj_bw);
        let inj_iv = self.injection[src].acquire(ready + link.latency, inj_time);
        // Cross-node traffic funnels through the source node's shared NIC
        // before its pair link; intra-node traffic rides the crossbar only.
        let same_node = self.cfg.topology.same_node(src, dst);
        let mut nic_queued = false;
        let wire_from = if same_node {
            inj_iv.start
        } else {
            let node = self.cfg.topology.node_of(src);
            let nic_iv = self.nics[node].acquire(inj_iv.start, wire);
            nic_queued = nic_iv.start > inj_iv.start;
            if self.metrics.is_enabled() {
                self.metrics
                    .span("nic_busy_ns", node as u32, 0, nic_iv.start, nic_iv.end);
            }
            nic_iv.start
        };
        let iv = self.links[src * n + dst].acquire(wire_from, wire);
        let iv = Interval {
            start: iv.start,
            end: iv.end.max(inj_iv.end),
        };
        if let Some(b) = &mut self.blame {
            let cat = if same_node {
                BlameCategory::WireIntra
            } else {
                BlameCategory::WireInter
            };
            let cause = b.device_cause(src as u32);
            let id = b.record(
                cat,
                Lane::Link(src as u32, dst as u32),
                ready + link.latency,
                iv.start,
                iv.end,
                cause,
                nic_queued,
            );
            b.note_outbound(src as u32, id);
            b.note_inbound(dst as u32, id);
        }
        self.traffic[src * n + dst].add_spread(iv.start, iv.end, payload as f64);
        if n_messages > 0 {
            self.msg_sizes.record(payload / n_messages.max(1));
        }
        self.stats.payload_bytes += payload;
        self.stats.header_bytes += n_messages * link.header_bytes as u64;
        self.stats.messages += n_messages;
        self.sent_upto[src] = self.sent_upto[src].max(iv.end);
        self.bump(iv.end);
        if self.metrics.is_enabled() {
            let (si, di) = (src as u32, dst as u32);
            self.metrics.incr("fabric_sends", si, di);
            self.metrics.add("fabric_messages", si, di, n_messages);
            self.metrics.add("fabric_payload_bytes", si, di, payload);
            self.metrics.add(
                "fabric_header_bytes",
                si,
                di,
                n_messages * link.header_bytes as u64,
            );
            if let Some(mean_payload) = payload.checked_div(n_messages) {
                self.metrics.observe(
                    "fabric_msg_payload_bytes",
                    si,
                    di,
                    telemetry::BYTES_BOUNDS,
                    mean_payload,
                );
            }
            // Per-tier rollups (tier 0 = intra-node, 1 = inter-node): on a
            // pod topology these split the same traffic by which fabric
            // tier carried it, so the slow-tier share is one key away.
            let tier = if self.cfg.topology.same_node(src, dst) {
                0
            } else {
                1
            };
            self.metrics
                .add("fabric_tier_messages", tier, 0, n_messages);
            self.metrics
                .add("fabric_tier_payload_bytes", tier, 0, payload);
            self.metrics.add(
                "fabric_tier_header_bytes",
                tier,
                0,
                n_messages * link.header_bytes as u64,
            );
            // Busy-time over the wire interval: bucket_value / bucket_ns is
            // this link's utilization in that bucket.
            self.metrics.span("link_busy_ns", si, di, iv.start, iv.end);
            // Stall: the gap between when the transfer wanted the wire and
            // when it got it — bucket_value / bucket_ns is the average
            // number of transfers queued on this link.
            let requested = ready + link.latency;
            if iv.start > requested {
                self.metrics
                    .span("link_stall_ns", si, di, requested, iv.start);
                self.metrics.incr("fabric_stalled_sends", si, di);
            }
            // In-flight transfer-time per source (issue → delivery).
            self.metrics
                .span("fabric_inflight_ns", si, 0, requested, iv.end);
        }
        if let Some(t) = &mut self.trace {
            t.record(
                format!("link{src}->{dst}"),
                format!("{payload}B x{n_messages}"),
                iv,
            );
        }
        iv
    }

    /// Fault-aware [`Machine::send`]: fails if the directed link is inside a
    /// down window at the attempted injection time, consumes wire time then
    /// fails if the message is sampled as dropped, stretches wire time while
    /// inside a bandwidth-degradation window, and adds sampled jitter to
    /// delayed messages. With no (or a trivial) fault plan installed this is
    /// exactly `Ok(self.send(..))` — bit-identical timing.
    pub fn try_send(
        &mut self,
        src: usize,
        dst: usize,
        payload: u64,
        n_messages: u64,
        ready: SimTime,
    ) -> Result<Interval, FabricError> {
        self.try_send_throttled(src, dst, payload, n_messages, ready, 1.0)
    }

    /// Fault-aware [`Machine::send_throttled`]; see [`Machine::try_send`].
    pub fn try_send_throttled(
        &mut self,
        src: usize,
        dst: usize,
        payload: u64,
        n_messages: u64,
        ready: SimTime,
        efficiency: f64,
    ) -> Result<Interval, FabricError> {
        if !self.faults_active() {
            return Ok(self.send_throttled(src, dst, payload, n_messages, ready, efficiency));
        }
        assert_ne!(src, dst, "send to self does not touch the fabric");
        let link = *self.cfg.topology.link(src, dst);
        let attempt_at = ready + link.latency;
        // Decide the message's fate up front (link state at the attempted
        // injection instant; per-pair sampling stream), then run the normal
        // timing path with the degradation folded into the efficiency.
        let (bw_factor, fate) = {
            // faults_active() above guarantees the plan is present.
            let Some(plan) = self.faults.as_mut() else {
                unreachable!("faults_active() checked above")
            };
            match plan.link_state(src, dst, attempt_at) {
                LinkState::Down { up_at } => {
                    return Err(FabricError::LinkDown {
                        src,
                        dst,
                        at: attempt_at,
                        up_at,
                    });
                }
                LinkState::Up { bw_factor } => (bw_factor, plan.sample_message(src, dst)),
            }
        };
        let eff = if bw_factor < 1.0 {
            efficiency * bw_factor
        } else {
            efficiency
        };
        let iv = self.send_throttled(src, dst, payload, n_messages, ready, eff);
        match fate {
            MessageFault::None => Ok(iv),
            MessageFault::Delay(jitter) => {
                let iv = Interval {
                    start: iv.start,
                    end: iv.end + jitter,
                };
                self.sent_upto[src] = self.sent_upto[src].max(iv.end);
                self.bump(iv.end);
                Ok(iv)
            }
            // The dropped message already consumed its wire interval (it was
            // transmitted, then lost); the caller retries from `iv.end`.
            MessageFault::Drop => Err(FabricError::MessageDropped {
                src,
                dst,
                at: iv.end,
            }),
        }
    }

    /// [`Machine::try_send_throttled`] wrapped in a retry loop under
    /// `policy`: link-down and dropped-message faults are retried with
    /// capped exponential backoff (deterministic, in simulated time),
    /// waiting out a down window when its end is known. Returns the
    /// successful wire interval and the number of attempts it took;
    /// exhaustion yields [`FabricError::RetryExhausted`].
    ///
    /// The loop runs inline, so two calls for the same destination can
    /// never reorder relative to each other.
    #[allow(clippy::too_many_arguments)]
    pub fn try_send_retry(
        &mut self,
        src: usize,
        dst: usize,
        payload: u64,
        n_messages: u64,
        ready: SimTime,
        efficiency: f64,
        policy: RetryPolicy,
    ) -> Result<(Interval, u32), FabricError> {
        let mut attempt = 1u32;
        let mut at = ready;
        loop {
            match self.try_send_throttled(src, dst, payload, n_messages, at, efficiency) {
                Ok(iv) => return Ok((iv, attempt)),
                Err(e) if e.is_retryable() && attempt < policy.max_attempts => {
                    // Retry `ready` feeds the link-latency offset again, so
                    // back out the latency the next attempt will re-add.
                    let link_latency = self.cfg.topology.link(src, dst).latency;
                    let next = policy.next_attempt_at(&e, attempt);
                    if let Some(b) = &mut self.blame {
                        // The backoff window is a span in its own right:
                        // the eventual wire span chains through it (the
                        // retry re-anchors the device cause below), so
                        // fault-induced waits bill `Retry` on the path.
                        let failed_at = match &e {
                            FabricError::LinkDown { at, .. }
                            | FabricError::MessageDropped { at, .. } => *at,
                            _ => next,
                        };
                        let cause = b.device_cause(src as u32);
                        let rid = b.record(
                            BlameCategory::Retry,
                            Lane::Link(src as u32, dst as u32),
                            failed_at,
                            failed_at,
                            next,
                            cause,
                            false,
                        );
                        b.set_device_cause(src as u32, Some(rid));
                    }
                    at = if next.as_ns() >= link_latency.as_ns() {
                        next - link_latency
                    } else {
                        SimTime::ZERO
                    };
                    attempt += 1;
                }
                Err(e) => {
                    return Err(FabricError::RetryExhausted {
                        attempts: attempt,
                        last: Box::new(e),
                    })
                }
            }
        }
    }

    /// Host-visible stream synchronization on `dev`: returns the time the
    /// host observes completion of everything enqueued before `at`.
    pub fn stream_sync(&mut self, dev: usize, at: SimTime) -> SimTime {
        let t = self.streams[dev].max(at) + self.cfg.specs[dev].stream_sync;
        self.bump(t);
        t
    }

    /// PGAS `quiet` on `src`: the instant all messages issued by `src` have
    /// been delivered, observed no earlier than `at`.
    pub fn quiet(&mut self, src: usize, at: SimTime) -> SimTime {
        let t = self.sent_upto[src].max(at);
        self.bump(t);
        t
    }

    /// Barrier across per-device times: everyone proceeds at the max.
    pub fn barrier(&mut self, times: &[SimTime]) -> SimTime {
        let t = times.iter().copied().fold(SimTime::ZERO, SimTime::max);
        self.bump(t);
        t
    }

    /// Latest instant any simulated activity completed.
    pub fn finish_time(&self) -> SimTime {
        self.horizon
    }

    /// Payload-bytes-over-time series for the directed pair `(src, dst)`.
    pub fn traffic_between(&self, src: usize, dst: usize) -> &TimeSeries {
        &self.traffic[src * self.n_gpus() + dst]
    }

    /// Sum of payload traffic over all links, as one series.
    pub fn total_traffic(&self) -> TimeSeries {
        let mut out = TimeSeries::new(self.cfg.traffic_bucket);
        for ts in &self.traffic {
            for (t, v) in ts.points() {
                if v != 0.0 {
                    out.add(t, v);
                }
            }
        }
        out
    }

    /// Aggregate traffic statistics.
    pub fn traffic_stats(&self) -> TrafficStats {
        self.stats
    }

    /// Histogram of per-message payload sizes.
    pub fn message_sizes(&self) -> &Histogram {
        &self.msg_sizes
    }

    /// Per-link utilization over the run so far, max across links.
    pub fn peak_link_utilization(&self) -> f64 {
        self.links
            .iter()
            .map(|l| l.utilization(self.horizon))
            .fold(0.0, f64::max)
    }

    fn bump(&mut self, t: SimTime) {
        self.horizon = self.horizon.max(t);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine(n: usize) -> Machine {
        Machine::new(MachineConfig::dgx_v100(n))
    }

    #[test]
    fn kernels_serialize_on_a_stream() {
        let mut m = machine(1);
        let shape = KernelShape::memory_bound(100, 1 << 16);
        let a = m.run_kernel(0, shape, SimTime::ZERO);
        let b = m.run_kernel(0, shape, SimTime::ZERO);
        assert!(b.interval.start >= a.interval.end);
        assert_eq!(m.finish_time(), b.interval.end);
    }

    #[test]
    fn kernels_on_different_devices_overlap() {
        let mut m = machine(2);
        let shape = KernelShape::memory_bound(100, 1 << 16);
        let a = m.run_kernel(0, shape, SimTime::ZERO);
        let b = m.run_kernel(1, shape, SimTime::ZERO);
        assert_eq!(a.interval, b.interval);
    }

    #[test]
    fn launch_overhead_is_charged() {
        let mut m = machine(1);
        let run = m.run_kernel(0, KernelShape::memory_bound(1, 256), SimTime::ZERO);
        assert_eq!(run.interval.start, SimTime::ZERO + m.spec(0).kernel_launch);
    }

    #[test]
    fn send_includes_latency_and_headers() {
        let mut m = machine(2);
        let link = *m.topology().link(0, 1);
        let iv = m.send(0, 1, 1 << 20, 1, SimTime::ZERO);
        assert_eq!(iv.start, SimTime::ZERO + link.latency);
        assert_eq!(iv.duration(), link.wire_time(1 << 20, 1));
        let stats = m.traffic_stats();
        assert_eq!(stats.payload_bytes, 1 << 20);
        assert_eq!(stats.header_bytes, link.header_bytes as u64);
        assert_eq!(stats.messages, 1);
    }

    #[test]
    fn aux_streams_overlap_the_default_stream_and_serialize_internally() {
        let mut m = machine(1);
        let s = m.add_stream(0);
        let k = m.run_kernel(0, KernelShape::memory_bound(100, 1 << 20), SimTime::ZERO);
        let a = m.run_on_stream(s, "head", Dur::from_us(50), crate::Event::READY);
        let b = m.run_on_stream(s, "head", Dur::from_us(50), crate::Event::READY);
        // Aux kernel a starts at launch overhead, regardless of the busy
        // default stream…
        assert_eq!(a.start, SimTime::ZERO + m.spec(0).kernel_launch);
        assert!(a.start < k.interval.end, "streams overlap");
        // …and b queues behind a on the same stream.
        assert!(b.start >= a.end);
        assert_eq!(m.stream_busy_time(s), Dur::from_us(100));
        assert_eq!(m.stream_free_at(s), b.end);
    }

    #[test]
    fn event_gates_delay_stream_kernels() {
        let mut m = machine(1);
        let s = m.add_stream(0);
        let gate = crate::Event::at(SimTime::ZERO + Dur::from_us(500));
        let iv = m.run_on_stream(s, "gated", Dur::from_us(10), gate);
        assert_eq!(iv.start, gate.when() + m.spec(0).kernel_launch);
    }

    #[test]
    fn chunked_kernel_pays_one_launch_and_honours_gates() {
        let mut m = machine(1);
        let launch = m.spec(0).kernel_launch;
        let s = m.add_stream(0);
        let chunk = |us: u64, gate: crate::Event| crate::StageChunk {
            gate,
            dur: Dur::from_us(us),
            label: "c",
        };
        // Ungated chunks run back to back after a single launch overhead.
        let iv = m.run_chunked_on(
            s,
            &[
                chunk(10, crate::Event::READY),
                chunk(10, crate::Event::READY),
            ],
            crate::Event::READY,
        );
        assert_eq!(iv.start, SimTime::ZERO + launch);
        assert_eq!(iv.end, iv.start + Dur::from_us(20));
        // A gated chunk stalls the persistent kernel (no extra launch),
        // and the stall is a bubble, not busy time.
        let t0 = m.stream_free_at(s);
        let gate = crate::Event::at(t0 + Dur::from_us(100));
        let iv2 = m.run_chunked_on(
            s,
            &[chunk(10, gate), chunk(10, crate::Event::READY)],
            crate::Event::READY,
        );
        assert_eq!(iv2.start, gate.when());
        assert_eq!(iv2.end, gate.when() + Dur::from_us(20));
        assert_eq!(m.stream_busy_time(s), Dur::from_us(40));
    }

    #[test]
    fn stream_occupancy_lands_in_telemetry_and_trace() {
        let mut m = machine(2);
        m.enable_telemetry();
        m.enable_trace();
        let s = m.add_stream(1);
        m.run_on_stream(s, "interact", Dur::from_us(25), crate::Event::READY);
        assert_eq!(m.metrics().counter("stream_kernels", 1, 0), 1);
        let busy: f64 = m
            .metrics()
            .timeline("stream_busy_ns", 1, 0)
            .expect("occupancy timeline")
            .buckets()
            .iter()
            .sum();
        assert_eq!(busy, Dur::from_us(25).as_ns() as f64);
        let t = m.trace().unwrap();
        assert!(t
            .events()
            .iter()
            .any(|e| e.track == "gpu1.s0" && e.name == "interact"));
    }

    #[test]
    fn links_serialize_but_distinct_sources_are_independent() {
        let mut m = machine(3);
        let a = m.send(0, 1, 1 << 20, 1, SimTime::ZERO);
        let b = m.send(0, 1, 1 << 20, 1, SimTime::ZERO);
        let c = m.send(2, 1, 1 << 20, 1, SimTime::ZERO);
        assert!(b.start >= a.end, "same link serializes");
        assert_eq!(c.start, a.start, "distinct sources run in parallel");
    }

    #[test]
    fn node_nic_serializes_cross_node_traffic_from_distinct_gpus() {
        // GPUs 0 and 1 (node 0) each send one large message to node 1:
        // distinct pair links, but the shared egress NIC serializes them.
        let mut m = Machine::new(MachineConfig::pod_v100(2, 2));
        let a = m.send(0, 2, 4 << 20, 1, SimTime::ZERO);
        let b = m.send(1, 3, 4 << 20, 1, SimTime::ZERO);
        assert!(
            b.start >= a.end,
            "shared NIC must serialize cross-node sends"
        );
        // Intra-node traffic from the same two sources is untouched by the
        // NIC and overlaps freely.
        let mut m = Machine::new(MachineConfig::pod_v100(2, 2));
        let a = m.send(0, 1, 4 << 20, 1, SimTime::ZERO);
        let b = m.send(1, 0, 4 << 20, 1, SimTime::ZERO);
        assert_eq!(a.start, b.start, "crossbar pairs stay independent");
    }

    #[test]
    fn single_gpu_nodes_see_identical_timing_with_and_without_nic() {
        // On a 2x1 fabric the NIC and the (only) pair link have identical
        // horizons, so EXT-2's executed numbers are unchanged by the NIC.
        let mut m = Machine::new(MachineConfig::multi_node_v100(2, 1));
        let link = *m.topology().link(0, 1);
        let a = m.send(0, 1, 1 << 20, 1, SimTime::ZERO);
        let b = m.send(0, 1, 1 << 20, 1, SimTime::ZERO);
        assert_eq!(a.start, SimTime::ZERO + link.latency);
        assert_eq!(a.duration(), link.wire_time(1 << 20, 1));
        assert_eq!(b.start, a.end, "back-to-back messages abut exactly");
    }

    #[test]
    fn telemetry_snapshot_labels_fabric_tiers_and_nics() {
        // One intra-node and one inter-node transfer on a 2x2 pod: the
        // snapshot must split them across the tier labels (tier 0 = intra,
        // 1 = inter) and record the source node's NIC busy-time, and be
        // bit-identical across identical runs.
        let run = || {
            let mut m = Machine::new(MachineConfig::pod_v100(2, 2));
            m.enable_telemetry();
            m.send(0, 1, 4096, 2, SimTime::ZERO);
            m.send(0, 2, 8192, 3, SimTime::ZERO);
            m.metrics().snapshot()
        };
        let snap = run();
        assert_eq!(snap.counter("fabric_tier_messages", 0, 0), 2);
        assert_eq!(snap.counter("fabric_tier_messages", 1, 0), 3);
        assert_eq!(snap.counter("fabric_tier_payload_bytes", 0, 0), 4096);
        assert_eq!(snap.counter("fabric_tier_payload_bytes", 1, 0), 8192);
        let inter = *MachineConfig::pod_v100(2, 2).topology.link(0, 2);
        assert_eq!(
            snap.counter("fabric_tier_header_bytes", 1, 0),
            3 * inter.header_bytes as u64
        );
        let nic_busy: f64 = snap
            .timelines
            .iter()
            .filter(|(k, _)| k.name == "nic_busy_ns" && k.i == 0)
            .flat_map(|(_, buckets)| buckets.iter())
            .sum();
        let wire = inter.wire_time(8192, 3);
        assert!(
            (nic_busy - wire.as_ns() as f64).abs() < 1.0,
            "NIC busy-time {nic_busy} must equal the inter-node wire time {}",
            wire.as_ns()
        );
        assert_eq!(snap, run(), "snapshots must be deterministic");
    }

    #[test]
    fn injection_port_throttles_fanout_from_one_source() {
        // Two transfers from the same source to different peers share the
        // injection port: the second enters its (idle) link late.
        let mut m = machine(3);
        let a = m.send(0, 1, 1 << 20, 1, SimTime::ZERO);
        let c = m.send(0, 2, 1 << 20, 1, SimTime::ZERO);
        assert!(c.start > a.start, "fan-out must be injection-limited");
        // But still faster than full serialization on one link.
        assert!(c.start < a.end);
    }

    #[test]
    fn throttled_send_is_slower() {
        let mut m1 = machine(2);
        let full = m1.send_throttled(0, 1, 1 << 20, 1, SimTime::ZERO, 1.0);
        let mut m2 = machine(2);
        let half = m2.send_throttled(0, 1, 1 << 20, 1, SimTime::ZERO, 0.5);
        let r = half.duration().as_secs_f64() / full.duration().as_secs_f64();
        assert!((r - 2.0).abs() < 0.05, "ratio {r}");
    }

    #[test]
    #[should_panic(expected = "out of (0, 1]")]
    fn bad_efficiency_panics() {
        let mut m = machine(2);
        m.send_throttled(0, 1, 10, 1, SimTime::ZERO, 0.0);
    }

    #[test]
    fn many_small_messages_cost_more_wire_time() {
        let mut m1 = machine(2);
        let big = m1.send(0, 1, 1 << 20, 1, SimTime::ZERO);
        let mut m2 = machine(2);
        let small = m2.send(0, 1, 1 << 20, 4096, SimTime::ZERO);
        assert!(small.duration() > big.duration());
        assert!(m2.traffic_stats().header_overhead() > m1.traffic_stats().header_overhead());
    }

    #[test]
    fn quiet_reflects_outstanding_sends() {
        let mut m = machine(2);
        let iv = m.send(0, 1, 1 << 24, 1, SimTime::ZERO);
        assert_eq!(m.quiet(0, SimTime::ZERO), iv.end);
        assert_eq!(m.quiet(1, SimTime::ZERO), SimTime::ZERO);
        // Quiet can't go backwards in time.
        let later = iv.end + Dur::from_us(5);
        assert_eq!(m.quiet(0, later), later);
    }

    #[test]
    fn traffic_series_records_payload_only() {
        let mut m = machine(2);
        m.send(0, 1, 1000, 10, SimTime::ZERO);
        let total: f64 = m.traffic_between(0, 1).total();
        assert!((total - 1000.0).abs() < 1e-6);
        assert_eq!(m.total_traffic().total(), total);
        assert_eq!(m.traffic_between(1, 0).total(), 0.0);
    }

    #[test]
    fn stream_sync_adds_overhead() {
        let mut m = machine(1);
        let run = m.run_kernel(0, KernelShape::memory_bound(10, 1 << 16), SimTime::ZERO);
        let t = m.stream_sync(0, SimTime::ZERO);
        assert_eq!(t, run.interval.end + m.spec(0).stream_sync);
    }

    #[test]
    fn barrier_takes_max() {
        let mut m = machine(2);
        let t = m.barrier(&[SimTime::from_us(3), SimTime::from_us(9)]);
        assert_eq!(t, SimTime::from_us(9));
    }

    #[test]
    fn varied_kernel_matches_uniform_when_equal() {
        let mut m1 = machine(1);
        let shape = KernelShape::memory_bound(50, 1 << 16);
        let tau = shape.block_time(m1.spec(0), 50);
        let uniform = m1.run_kernel(0, shape, SimTime::ZERO);
        let mut m2 = machine(1);
        let varied = m2.run_kernel_varied(0, &vec![tau; 50], SimTime::ZERO);
        assert_eq!(uniform.interval.end, varied.interval.end);
        assert_eq!(varied.block_ends.len(), 50);
    }

    #[test]
    fn varied_kernel_empty() {
        let mut m = machine(1);
        let run = m.run_kernel_varied(0, &[], SimTime::from_us(1));
        assert_eq!(run.interval.start, run.interval.end);
    }

    #[test]
    fn peak_link_utilization_bounded() {
        let mut m = machine(2);
        m.send(0, 1, 1 << 26, 1, SimTime::ZERO);
        let u = m.peak_link_utilization();
        assert!(u > 0.5 && u <= 1.0, "utilization {u} out of range");
    }

    #[test]
    fn tracing_records_kernels_and_transfers() {
        let mut m = machine(2);
        assert!(m.trace().is_none());
        m.enable_trace();
        let run = m.run_kernel(0, KernelShape::memory_bound(10, 1 << 16), SimTime::ZERO);
        m.send(0, 1, 4096, 2, run.interval.end);
        m.run_kernel_varied(1, &[Dur::from_us(1)], SimTime::ZERO);
        let t = m.trace().unwrap();
        assert_eq!(t.len(), 3);
        let json = t.to_chrome_json();
        assert!(json.contains("gpu0"));
        assert!(json.contains("link0->1"));
        assert!(json.contains("4096B x2"));
    }

    #[test]
    fn try_send_without_plan_matches_send() {
        let mut m1 = machine(2);
        let a = m1.send(0, 1, 1 << 20, 4, SimTime::ZERO);
        let mut m2 = machine(2);
        let b = m2
            .try_send(0, 1, 1 << 20, 4, SimTime::ZERO)
            .expect("no faults");
        assert_eq!(a, b);
        assert_eq!(m1.traffic_stats(), m2.traffic_stats());
    }

    #[test]
    fn trivial_plan_is_timing_noop() {
        let mut m1 = machine(4);
        let mut m2 = machine(4);
        m2.install_faults(crate::FaultPlan::generate(42, 4, crate::FaultSpec::none()));
        let shape = KernelShape::memory_bound(200, 1 << 16);
        for dev in 0..4 {
            let a = m1.run_kernel(dev, shape, SimTime::ZERO);
            let b = m2.run_kernel(dev, shape, SimTime::ZERO);
            assert_eq!(a.interval, b.interval);
            assert_eq!(a.block_ends, b.block_ends);
        }
        let a = m1.try_send(0, 1, 1 << 20, 8, SimTime::ZERO).expect("clean");
        let b = m2
            .try_send(0, 1, 1 << 20, 8, SimTime::ZERO)
            .expect("trivial plan");
        assert_eq!(a, b);
        assert_eq!(m2.straggler_factor(0), 1.0);
        assert_eq!(
            m2.fault_fraction(0, 1, SimTime::ZERO, SimTime::from_ms(1)),
            0.0
        );
    }

    #[test]
    fn down_window_fails_send_with_up_time() {
        let mut m = machine(2);
        // Hand-build a plan with one down window on 0->1 via the chaos spec:
        // probe seeds until a flap covers our attempt time. Deterministic:
        // seed search itself is fixed at build time.
        let mut seed = 0u64;
        let plan = loop {
            let p = crate::FaultPlan::generate(seed, 2, crate::FaultSpec::chaos(1.0));
            if let crate::LinkState::Down { .. } =
                p.link_state(0, 1, SimTime::from_us(50) + m.topology().link(0, 1).latency)
            {
                break p;
            }
            seed += 1;
            assert!(seed < 10_000, "no flap found covering the probe instant");
        };
        m.install_faults(plan);
        match m.try_send(0, 1, 4096, 1, SimTime::from_us(50)) {
            Err(crate::FabricError::LinkDown {
                src: 0,
                dst: 1,
                at,
                up_at,
            }) => {
                assert!(up_at > at);
            }
            other => panic!("expected LinkDown, got {other:?}"),
        }
        // The failed attempt must not have touched the wire.
        assert_eq!(m.traffic_stats().messages, 0);
    }

    #[test]
    fn degraded_window_stretches_wire_time() {
        // Same construction trick: find a seed whose 0->1 link is degraded
        // (and not down) at the attempt instant.
        let mut seed = 0u64;
        let (plan, factor) = loop {
            let p = crate::FaultPlan::generate(seed, 2, crate::FaultSpec::chaos(0.7));
            let at = SimTime::from_us(50) + Dur::from_ns(1300);
            if let crate::LinkState::Up { bw_factor } = p.link_state(0, 1, at) {
                if bw_factor < 0.999 && p.spec().drop_prob == 0.0 {
                    break (p, bw_factor);
                }
                // drop_prob is nonzero under chaos; accept and handle drops below.
                if bw_factor < 0.999 {
                    break (p, bw_factor);
                }
            }
            seed += 1;
            assert!(
                seed < 10_000,
                "no degradation found covering the probe instant"
            );
        };
        let mut m = machine(2);
        m.install_faults(plan);
        let mut clean = machine(2);
        let base = clean.send(0, 1, 1 << 20, 1, SimTime::from_us(50));
        match m.try_send(0, 1, 1 << 20, 1, SimTime::from_us(50)) {
            Ok(iv) => {
                let ratio = iv.duration().as_secs_f64() / base.duration().as_secs_f64();
                // Wire time stretched by at least 1/bw_factor (jitter may add
                // more; ns rounding may shave a hair off).
                assert!(
                    ratio >= (1.0 / factor) * (1.0 - 1e-3),
                    "ratio {ratio}, factor {factor}"
                );
            }
            Err(crate::FabricError::MessageDropped { at, .. }) => {
                // Drop still consumed (stretched) wire time.
                assert!(at > base.end);
            }
            Err(e) => panic!("unexpected {e:?}"),
        }
    }

    #[test]
    fn straggler_slows_kernels_on_that_device_only() {
        // Find a seed where exactly some device straggles.
        let mut seed = 0u64;
        let plan = loop {
            let p = crate::FaultPlan::generate(seed, 2, crate::FaultSpec::chaos(1.0));
            if p.straggler_factor(0) > 1.0 && p.straggler_factor(1) == 1.0 {
                break p;
            }
            seed += 1;
            assert!(seed < 10_000);
        };
        let factor = plan.straggler_factor(0);
        let mut m = machine(2);
        m.install_faults(plan);
        let mut clean = machine(2);
        let shape = KernelShape::memory_bound(100, 1 << 16);
        let slow = m.run_kernel(0, shape, SimTime::ZERO);
        let healthy = m.run_kernel(1, shape, SimTime::ZERO);
        let base = clean.run_kernel(0, shape, SimTime::ZERO);
        assert_eq!(healthy.interval, base.interval, "non-straggler unaffected");
        let ratio = slow.interval.duration().as_secs_f64() / base.interval.duration().as_secs_f64();
        assert!(
            (ratio - factor).abs() / factor < 0.05,
            "ratio {ratio} vs factor {factor}"
        );
    }

    #[test]
    fn fault_windows_show_up_in_trace() {
        let mut m = machine(2);
        m.enable_trace();
        m.install_faults(crate::FaultPlan::generate(
            3,
            2,
            crate::FaultSpec::chaos(1.0),
        ));
        let has_fault_track = m
            .trace()
            .expect("trace enabled")
            .events()
            .iter()
            .any(|e| e.track.starts_with("fault"));
        assert!(
            has_fault_track,
            "chaos(1.0) must schedule at least one window"
        );
    }

    #[test]
    #[should_panic(expected = "fault plan generated for")]
    fn plan_gpu_count_mismatch_panics() {
        let mut m = machine(2);
        m.install_faults(crate::FaultPlan::generate(1, 4, crate::FaultSpec::none()));
    }

    #[test]
    #[should_panic(expected = "send to self")]
    fn self_send_panics() {
        let mut m = machine(2);
        m.send(1, 1, 10, 1, SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "GPU specs")]
    fn config_mismatch_panics() {
        let mut cfg = MachineConfig::dgx_v100(2);
        cfg.specs.pop();
        let _ = Machine::new(cfg);
    }
}
