//! Property-based tests for the GPU machine model.

use desim::SimTime;
use gpusim::{FaultPlan, FaultSpec, KernelShape, Machine, MachineConfig};
use proptest::prelude::*;

proptest! {
    /// Same-link transfers never overlap and respect issue order; traffic
    /// accounting conserves payload bytes.
    #[test]
    fn link_fifo_and_conservation(sends in prop::collection::vec((1u64..1_000_000, 1u64..64, 0u64..1000), 1..50)) {
        let mut m = Machine::new(MachineConfig::dgx_v100(2));
        let mut prev_end = SimTime::ZERO;
        let mut total = 0u64;
        let mut msgs = 0u64;
        for (payload, n_msgs, ready_us) in sends {
            let iv = m.send(0, 1, payload, n_msgs, SimTime::from_us(ready_us));
            prop_assert!(iv.start >= prev_end);
            prev_end = iv.end;
            total += payload;
            msgs += n_msgs;
        }
        let stats = m.traffic_stats();
        prop_assert_eq!(stats.payload_bytes, total);
        prop_assert_eq!(stats.messages, msgs);
        let series_total = m.traffic_between(0, 1).total();
        prop_assert!((series_total - total as f64).abs() < 1e-3 * total as f64 + 1e-6);
    }

    /// Kernel duration is monotone in both block count and bytes per block.
    #[test]
    fn kernel_duration_monotone(blocks in 1u64..50_000, bytes in 1u64..1_000_000) {
        let spec = gpusim::GpuSpec::v100();
        let base = KernelShape::memory_bound(blocks, bytes).duration(&spec);
        let more_blocks = KernelShape::memory_bound(blocks * 2, bytes).duration(&spec);
        let more_bytes = KernelShape::memory_bound(blocks, bytes * 2).duration(&spec);
        prop_assert!(more_blocks >= base);
        prop_assert!(more_bytes >= base);
    }

    /// Splitting a transfer into more messages never makes it faster, and
    /// the wire time difference is exactly the extra header bytes.
    #[test]
    fn more_messages_never_faster(payload in 1u64..10_000_000, k in 2u64..1000) {
        let mut m1 = Machine::new(MachineConfig::dgx_v100(2));
        let one = m1.send(0, 1, payload, 1, SimTime::ZERO);
        let mut m2 = Machine::new(MachineConfig::dgx_v100(2));
        let many = m2.send(0, 1, payload, k, SimTime::ZERO);
        prop_assert!(many.duration() >= one.duration());
    }

    /// The wave model's last block end equals the closed-form duration.
    #[test]
    fn wave_model_agrees_with_duration(blocks in 1u64..10_000, bytes in 256u64..1_000_000) {
        let spec = gpusim::GpuSpec::v100();
        let shape = KernelShape::memory_bound(blocks, bytes);
        let run = gpusim::KernelRun::wave_model(&shape, &spec, SimTime::ZERO);
        let d = shape.duration(&spec);
        prop_assert_eq!(run.interval.end - run.interval.start, d);
        // Block ends are non-decreasing in block index.
        for w in run.block_ends.windows(2) {
            prop_assert!(w[1] >= w[0]);
        }
    }

    /// The same fault seed yields the same plan, the same event trace and
    /// the same send outcomes — the whole chaos run is a pure function of
    /// `(seed, spec, call sequence)`.
    #[test]
    fn identical_fault_seed_identical_trace(
        seed in 0u64..1000,
        intensity in 0.05f64..1.0,
        sends in prop::collection::vec((1u64..100_000, 1u64..32, 0u64..500), 1..30),
    ) {
        let spec = FaultSpec::chaos(intensity);
        let run = || {
            let mut m = Machine::new(MachineConfig::dgx_v100(2));
            m.install_faults(FaultPlan::generate(seed, 2, spec));
            let outcomes: Vec<_> = sends
                .iter()
                .map(|&(payload, n_msgs, ready_us)| {
                    m.try_send(0, 1, payload, n_msgs, SimTime::from_us(ready_us))
                        .map(|iv| (iv.start, iv.end))
                        .map_err(|e| e.to_string())
                })
                .collect();
            let plan = m.faults().expect("plan installed");
            (plan.fingerprint(), plan.events().to_vec(), outcomes, m.finish_time())
        };
        let a = run();
        let b = run();
        prop_assert_eq!(a.0, b.0);
        prop_assert_eq!(a.1, b.1);
        prop_assert_eq!(a.2, b.2);
        prop_assert_eq!(a.3, b.3);
    }

    /// A trivial plan (intensity 0) never changes any send outcome relative
    /// to a machine with no plan at all.
    #[test]
    fn trivial_plan_never_perturbs(
        sends in prop::collection::vec((1u64..100_000, 1u64..32, 0u64..500), 1..20),
    ) {
        let mut clean = Machine::new(MachineConfig::dgx_v100(2));
        let mut faulty = Machine::new(MachineConfig::dgx_v100(2));
        faulty.install_faults(FaultPlan::generate(99, 2, FaultSpec::chaos(0.0)));
        for &(payload, n_msgs, ready_us) in &sends {
            let at = SimTime::from_us(ready_us);
            let a = clean.send(0, 1, payload, n_msgs, at);
            let b = faulty.try_send(0, 1, payload, n_msgs, at).expect("trivial plan");
            prop_assert_eq!(a, b);
        }
    }

    /// finish_time is the max over all recorded activity.
    #[test]
    fn finish_time_is_max(n_kernels in 1usize..10, n_sends in 0usize..10) {
        let mut m = Machine::new(MachineConfig::dgx_v100(2));
        let mut latest = SimTime::ZERO;
        for i in 0..n_kernels {
            let r = m.run_kernel(i % 2, KernelShape::memory_bound(10, 1 << 12), SimTime::ZERO);
            latest = latest.max(r.interval.end);
        }
        for _ in 0..n_sends {
            let iv = m.send(0, 1, 4096, 4, SimTime::ZERO);
            latest = latest.max(iv.end);
        }
        prop_assert_eq!(m.finish_time(), latest);
    }
}

proptest! {
    /// Node arithmetic on arbitrary pod shapes: `node_of` partitions GPUs
    /// into contiguous blocks of `per_node`, `same_node` agrees with it,
    /// every gateway is its node's lowest member, and `node_members` is the
    /// exact preimage of `node_of`.
    #[test]
    fn pod_topology_node_math_is_consistent(nodes in 1usize..12, per_node in 1usize..8) {
        let t = gpusim::Topology::multi_node(
            nodes,
            per_node,
            gpusim::LinkSpec::nvlink_v100(),
            gpusim::LinkSpec::roce(),
        );
        prop_assert_eq!(t.nodes(), nodes);
        prop_assert_eq!(t.n_gpus(), nodes * per_node);
        for g in 0..t.n_gpus() {
            prop_assert_eq!(t.node_of(g), g / per_node);
            let gw = t.gateway_of(g);
            prop_assert!(t.same_node(g, gw));
            prop_assert_eq!(gw, t.node_of(g) * per_node);
        }
        for node in 0..nodes {
            let members: Vec<usize> = t.node_members(node).collect();
            prop_assert_eq!(members.len(), per_node);
            for &m in &members {
                prop_assert_eq!(t.node_of(m), node);
            }
            prop_assert_eq!(members[0], t.gateway_of(members[0]));
        }
        for a in 0..t.n_gpus() {
            for b in 0..t.n_gpus() {
                prop_assert_eq!(t.same_node(a, b), t.node_of(a) == t.node_of(b));
            }
        }
    }

    /// Inter-node pairs ride the slow tier, intra-node pairs the crossbar —
    /// for every pair of a random pod shape.
    #[test]
    fn pod_links_match_tiers(nodes in 1usize..8, per_node in 1usize..6) {
        let intra = gpusim::LinkSpec::nvlink_v100();
        let inter = gpusim::LinkSpec::roce();
        let t = gpusim::Topology::multi_node(nodes, per_node, intra, inter);
        for (a, b) in t.pairs() {
            let l = t.link(a, b);
            let expect = if t.same_node(a, b) { &intra } else { &inter };
            prop_assert_eq!(l.bandwidth, expect.bandwidth);
            prop_assert_eq!(l.latency, expect.latency);
            prop_assert_eq!(l.header_bytes, expect.header_bytes);
        }
    }
}
