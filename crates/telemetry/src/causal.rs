//! # causal — span-graph recorder and critical-path blame analyzer
//!
//! The EXT-16 observability layer. Every billed interval in the simulator
//! (kernel run, stream chunk, wire serialization, NIC span, gateway
//! staging/DMA, retry backoff, sync/fence) can be recorded as a [`Span`]
//! with an explicit **causal parent** — the span whose completion gated its
//! start — plus the instant its inputs were ready. Walking the graph
//! backward from a batch's completion then yields the *exact* critical
//! path as a gap-free partition of `[batch_start, batch_end]`, with every
//! nanosecond attributed to one [`BlameCategory`]:
//!
//! - a span's **body** bills its own category (kernel, wire, staging, …);
//! - the wait between a span's `ready` instant and its actual `start`
//!   bills the *queueing* category of its lane (link queue → exposed
//!   communication, stream queue → compute queue / pipeline bubble);
//! - any remaining unmodelled gap bills [`BlameCategory::Overhead`].
//!
//! Because the three cases partition the window exactly, per-batch blame
//! vectors sum to the end-to-end batch time in integer nanoseconds — a
//! property the proptests lock. Like the metrics [`Registry`](crate::Registry),
//! recording is opt-in and recording order is the simulator's own serial
//! event order, so blame vectors are bit-identical at any thread width.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use desim::{Dur, SimTime};

/// Fixed blame taxonomy: every nanosecond of a batch's critical path lands
/// in exactly one of these buckets.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(usize)]
pub enum BlameCategory {
    /// Embedding gather/pool (lookup) kernel execution.
    GatherPool,
    /// Dense GEMM / interaction / MLP kernel execution.
    Gemm,
    /// Baseline sync+unpack rearrangement kernel execution.
    Unpack,
    /// Intra-node wire serialization (NVLink crossbar).
    WireIntra,
    /// Inter-node wire serialization (RoCE/IB tier).
    WireInter,
    /// Waiting on a node's shared egress NIC (serialization or queueing).
    Nic,
    /// Gateway proxy staging wait and scatter DMA.
    GatewayStage,
    /// Queue wait on a communication resource (link or injection port).
    QueueComm,
    /// Queue wait on a compute resource (default stream busy).
    QueueCompute,
    /// Pipeline bubble: an auxiliary stream idle, waiting on a gate.
    StreamBubble,
    /// Retry backoff after a fabric fault.
    Retry,
    /// Admission shedding / deadline timeout in the serving layer.
    Shed,
    /// Synchronization fences: `quiet`, barrier, stream sync.
    Sync,
    /// Unmodelled gaps: kernel launch, call overheads, link latency.
    Overhead,
}

impl BlameCategory {
    /// Every category, in declaration (= export) order.
    pub const ALL: [BlameCategory; 14] = [
        BlameCategory::GatherPool,
        BlameCategory::Gemm,
        BlameCategory::Unpack,
        BlameCategory::WireIntra,
        BlameCategory::WireInter,
        BlameCategory::Nic,
        BlameCategory::GatewayStage,
        BlameCategory::QueueComm,
        BlameCategory::QueueCompute,
        BlameCategory::StreamBubble,
        BlameCategory::Retry,
        BlameCategory::Shed,
        BlameCategory::Sync,
        BlameCategory::Overhead,
    ];

    /// Stable snake_case label used in CSV headers, folded stacks, and
    /// trace lanes.
    pub fn label(self) -> &'static str {
        match self {
            BlameCategory::GatherPool => "gather_pool",
            BlameCategory::Gemm => "gemm",
            BlameCategory::Unpack => "unpack",
            BlameCategory::WireIntra => "wire_intra",
            BlameCategory::WireInter => "wire_inter",
            BlameCategory::Nic => "nic",
            BlameCategory::GatewayStage => "gateway_stage",
            BlameCategory::QueueComm => "queue_comm",
            BlameCategory::QueueCompute => "queue_compute",
            BlameCategory::StreamBubble => "stream_bubble",
            BlameCategory::Retry => "retry",
            BlameCategory::Shed => "shed",
            BlameCategory::Sync => "sync",
            BlameCategory::Overhead => "overhead",
        }
    }

    /// Whether critical-path time in this bucket is **exposed
    /// communication** — time the batch spent blocked on moving bytes
    /// rather than computing on them. This is the share the paper's fused
    /// emission removes; `reproduce blame` locks it dominant under the
    /// baseline and near-zero under PGAS.
    pub fn is_exposed_comm(self) -> bool {
        matches!(
            self,
            BlameCategory::WireIntra
                | BlameCategory::WireInter
                | BlameCategory::Nic
                | BlameCategory::GatewayStage
                | BlameCategory::QueueComm
                | BlameCategory::Retry
        )
    }
}

/// The serialized resource a span occupied. Lane identity picks the
/// queueing category for ready→start waits and names folded-stack frames.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Lane {
    /// A device's default compute stream.
    Gpu(u32),
    /// Auxiliary stream `idx` on a device.
    Stream(u32, u32),
    /// The directed pair link `src -> dst`.
    Link(u32, u32),
    /// A node's shared egress NIC.
    Nic(u32),
    /// A gateway proxy GPU's forwarding engine.
    Gateway(u32),
    /// Host-side control (barriers, serving decisions).
    Host,
}

impl Lane {
    /// The queueing category charged when a span on this lane starts
    /// later than its `ready` instant.
    fn queue_category(self, nic_bound: bool) -> BlameCategory {
        match self {
            Lane::Gpu(_) => BlameCategory::QueueCompute,
            Lane::Stream(_, _) => BlameCategory::StreamBubble,
            Lane::Link(_, _) if nic_bound => BlameCategory::Nic,
            Lane::Link(_, _) | Lane::Gateway(_) => BlameCategory::QueueComm,
            Lane::Nic(_) => BlameCategory::Nic,
            Lane::Host => BlameCategory::Overhead,
        }
    }

    /// Folded-stack frame for this lane, e.g. `gpu0` or `link0->1`.
    fn frame(self) -> String {
        match self {
            Lane::Gpu(d) => format!("gpu{d}"),
            Lane::Stream(d, s) => format!("gpu{d}.s{s}"),
            Lane::Link(s, d) => format!("link{s}->{d}"),
            Lane::Nic(n) => format!("nic{n}"),
            Lane::Gateway(g) => format!("gateway{g}"),
            Lane::Host => "host".to_string(),
        }
    }
}

/// One billed interval with its causal ancestry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Span {
    /// What the interval was spent on.
    pub cat: BlameCategory,
    /// The serialized resource it occupied.
    pub lane: Lane,
    /// Instant the span's inputs were available; `start - ready` is queue
    /// wait on the lane.
    pub ready: SimTime,
    /// Instant the span actually began.
    pub start: SimTime,
    /// Instant it completed.
    pub end: SimTime,
    /// The span whose completion produced this span's inputs, if modelled.
    pub cause: Option<usize>,
    /// On an inter-node link span: the wait was bound by the shared NIC
    /// rather than the pair link itself.
    pub nic_bound: bool,
}

/// One segment of an extracted critical path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Segment {
    /// Segment start (inclusive).
    pub start: SimTime,
    /// Segment end (exclusive).
    pub end: SimTime,
    /// The category this segment bills.
    pub cat: BlameCategory,
}

/// Per-category nanosecond totals; one per batch, or aggregated per run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BlameVec {
    ns: [u64; BlameCategory::ALL.len()],
}

impl BlameVec {
    /// Add `d` to `cat`'s bucket.
    pub fn add(&mut self, cat: BlameCategory, d: Dur) {
        self.ns[cat as usize] += d.as_ns();
    }

    /// Nanoseconds billed to `cat`.
    pub fn get(&self, cat: BlameCategory) -> u64 {
        self.ns[cat as usize]
    }

    /// Sum across all categories — exactly the batch duration by the
    /// partition property.
    pub fn total_ns(&self) -> u64 {
        self.ns.iter().sum()
    }

    /// Nanoseconds in exposed-communication categories.
    pub fn exposed_comm_ns(&self) -> u64 {
        BlameCategory::ALL
            .iter()
            .filter(|c| c.is_exposed_comm())
            .map(|&c| self.get(c))
            .sum()
    }

    /// Exposed-communication share of the critical path, in `[0, 1]`.
    pub fn exposed_comm_share(&self) -> f64 {
        let total = self.total_ns();
        if total == 0 {
            0.0
        } else {
            self.exposed_comm_ns() as f64 / total as f64
        }
    }

    /// Entry-wise accumulation.
    pub fn accumulate(&mut self, other: &BlameVec) {
        for (a, b) in self.ns.iter_mut().zip(other.ns.iter()) {
            *a += b;
        }
    }
}

/// The extracted critical path of one batch: its blame vector plus the
/// gap-free segment list it was summed from (newest segments last), and
/// the request trace id active when the batch completed (0 if none).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BatchBlame {
    /// Batch window start.
    pub start: SimTime,
    /// Batch window end.
    pub end: SimTime,
    /// Per-category critical-path nanoseconds; sums to `end - start`.
    pub vec: BlameVec,
    /// The path as a partition of `[start, end]`, in time order.
    pub segments: Vec<Segment>,
    /// Trace id ([`SpanGraph::set_trace`]) linking this batch to a serving
    /// request, 0 when unset.
    pub trace_id: u64,
}

/// Append-only span graph plus the cursor state the instrumentation hooks
/// use to thread causality without plumbing ids through every call:
/// a *pending kind* (what category the next kernel bills), a *pending
/// cause*, and per-device cause anchors (the span that produced the data a
/// device is currently emitting).
#[derive(Clone, Debug, Default)]
pub struct SpanGraph {
    spans: Vec<Span>,
    /// Latest-ending wire/scatter span delivering *into* each device.
    last_inbound: BTreeMap<u32, usize>,
    /// Latest-ending wire/scatter span emitted *by* each device.
    last_outbound: BTreeMap<u32, usize>,
    /// Cause anchor per emitting device (usually its lookup kernel span).
    device_cause: BTreeMap<u32, usize>,
    pending_cause: Option<usize>,
    kind: Option<BlameCategory>,
    trace_id: u64,
    batches: Vec<BatchBlame>,
}

impl SpanGraph {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one span; returns its id. Ids are assigned in recording
    /// order, so a span's `cause` always has a smaller id — the property
    /// that makes the backward walk terminate.
    #[allow(clippy::too_many_arguments)]
    pub fn record(
        &mut self,
        cat: BlameCategory,
        lane: Lane,
        ready: SimTime,
        start: SimTime,
        end: SimTime,
        cause: Option<usize>,
        nic_bound: bool,
    ) -> usize {
        debug_assert!(cause.is_none_or(|c| c < self.spans.len()));
        let id = self.spans.len();
        self.spans.push(Span {
            cat,
            lane,
            ready,
            start,
            end,
            cause,
            nic_bound,
        });
        id
    }

    /// All recorded spans, in recording order.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// The most recently recorded span's id.
    pub fn last_span(&self) -> Option<usize> {
        self.spans.len().checked_sub(1)
    }

    /// Category the next kernel span bills ([`BlameCategory::GatherPool`]
    /// when unset).
    pub fn kind(&self) -> BlameCategory {
        self.kind.unwrap_or(BlameCategory::GatherPool)
    }

    /// Set the category for subsequent kernel spans.
    pub fn set_kind(&mut self, cat: BlameCategory) {
        self.kind = Some(cat);
    }

    /// Pending cause consumed by the next kernel span.
    pub fn cause(&self) -> Option<usize> {
        self.pending_cause
    }

    /// Set (or clear) the pending cause for subsequent kernel spans.
    pub fn set_cause(&mut self, cause: Option<usize>) {
        self.pending_cause = cause;
    }

    /// The span currently anchoring causes for data emitted by `dev`.
    pub fn device_cause(&self, dev: u32) -> Option<usize> {
        self.device_cause.get(&dev).copied()
    }

    /// Anchor (or clear) `dev`'s cause span.
    pub fn set_device_cause(&mut self, dev: u32, cause: Option<usize>) {
        match cause {
            Some(id) => {
                self.device_cause.insert(dev, id);
            }
            None => {
                self.device_cause.remove(&dev);
            }
        }
    }

    /// Note that span `id` delivered bytes into `dst`; keeps the
    /// latest-*ending* such span.
    pub fn note_inbound(&mut self, dst: u32, id: usize) {
        let end = self.spans[id].end;
        match self.last_inbound.get(&dst) {
            Some(&prev) if self.spans[prev].end >= end => {}
            _ => {
                self.last_inbound.insert(dst, id);
            }
        }
    }

    /// Note that span `id` carried bytes emitted by `src`; keeps the
    /// latest-*ending* such span.
    pub fn note_outbound(&mut self, src: u32, id: usize) {
        let end = self.spans[id].end;
        match self.last_outbound.get(&src) {
            Some(&prev) if self.spans[prev].end >= end => {}
            _ => {
                self.last_outbound.insert(src, id);
            }
        }
    }

    /// Latest-ending span delivering into `dst`, if any.
    pub fn last_inbound(&self, dst: u32) -> Option<usize> {
        self.last_inbound.get(&dst).copied()
    }

    /// Latest-ending span emitted by `src`, if any.
    pub fn last_outbound(&self, src: u32) -> Option<usize> {
        self.last_outbound.get(&src).copied()
    }

    /// Set the request trace id stamped onto subsequently closed batches.
    pub fn set_trace(&mut self, id: u64) {
        self.trace_id = id;
    }

    /// Walk backward from `terminal` and close the batch window
    /// `[start, end]`: extracts the critical path, stores its
    /// [`BatchBlame`], and resets the per-batch cursor state (pending
    /// kind/cause and device anchors; inbound/outbound lane horizons
    /// persist — a previous batch's transfer can legitimately queue the
    /// next batch's wire).
    pub fn end_batch(&mut self, start: SimTime, end: SimTime, terminal: Option<usize>) {
        let segments = self.walk(start, end, terminal);
        let mut vec = BlameVec::default();
        for s in &segments {
            vec.add(s.cat, s.end.since(s.start));
        }
        self.batches.push(BatchBlame {
            start,
            end,
            vec,
            segments,
            trace_id: self.trace_id,
        });
        self.pending_cause = None;
        self.kind = None;
        self.device_cause.clear();
    }

    /// Closed batches, in completion order.
    pub fn batches(&self) -> &[BatchBlame] {
        &self.batches
    }

    /// Blame vector summed over all closed batches.
    pub fn total(&self) -> BlameVec {
        let mut out = BlameVec::default();
        for b in &self.batches {
            out.accumulate(&b.vec);
        }
        out
    }

    /// The backward walk. Produces a gap-free partition of
    /// `[lo, hi]` in time order. Invariants: the cursor only ever moves to
    /// strictly smaller span ids (causes precede effects in recording
    /// order), and `t_hi` is strictly decreasing across iterations that
    /// emit segments, so the walk always terminates.
    fn walk(&self, lo: SimTime, hi: SimTime, terminal: Option<usize>) -> Vec<Segment> {
        let mut segs: Vec<Segment> = Vec::new();
        let push = |segs: &mut Vec<Segment>, start: SimTime, end: SimTime, cat| {
            if end > start {
                segs.push(Segment { start, end, cat });
            }
        };
        let mut t_hi = hi;
        let mut cur = terminal;
        while t_hi > lo {
            let Some(id) = cur else {
                push(&mut segs, lo, t_hi, BlameCategory::Overhead);
                break;
            };
            let s = &self.spans[id];
            // Gap between the span's completion and whatever consumed it:
            // unmodelled overhead (launch gaps, fence costs).
            let s_end = s.end.min(t_hi).max(lo);
            push(&mut segs, s_end, t_hi, BlameCategory::Overhead);
            t_hi = s_end;
            if t_hi <= lo {
                break;
            }
            // The span's own body bills its category.
            let s_start = s.start.min(t_hi).max(lo);
            push(&mut segs, s_start, t_hi, s.cat);
            t_hi = s_start;
            if t_hi <= lo {
                break;
            }
            // ready -> start: queue wait on the span's lane.
            let ready = s.ready.min(t_hi).max(lo);
            push(&mut segs, ready, t_hi, s.lane.queue_category(s.nic_bound));
            t_hi = ready;
            cur = s.cause;
        }
        segs.reverse();
        segs
    }

    /// Folded-stack flamegraph text over every closed batch's critical
    /// path: one `critical_path;<lane>;<category> <ns>` line per observed
    /// frame, deterministic order. Feed straight into any FlameGraph
    /// renderer. Lane frames come from the span graph where a segment's
    /// category is lane-specific and `all` otherwise.
    pub fn folded(&self) -> String {
        let mut agg: BTreeMap<(String, &'static str), u64> = BTreeMap::new();
        for b in &self.batches {
            for s in &b.segments {
                let lane = self.segment_lane_frame(s);
                *agg.entry((lane, s.cat.label())).or_insert(0) += s.end.since(s.start).as_ns();
            }
        }
        let mut out = String::new();
        for ((lane, cat), ns) in agg {
            let _ = writeln!(out, "critical_path;{lane};{cat} {ns}");
        }
        out
    }

    /// Best-effort lane frame for a segment: the lane of a recorded span
    /// whose body covers it, else `all`.
    fn segment_lane_frame(&self, seg: &Segment) -> String {
        self.spans
            .iter()
            .find(|s| s.cat == seg.cat && s.start <= seg.start && s.end >= seg.end)
            .map(|s| s.lane.frame())
            .unwrap_or_else(|| "all".to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::ZERO + Dur::from_us(us)
    }

    #[test]
    fn empty_walk_is_all_overhead() {
        let mut g = SpanGraph::new();
        g.end_batch(t(0), t(10), None);
        let b = &g.batches()[0];
        assert_eq!(b.vec.total_ns(), Dur::from_us(10).as_ns());
        assert_eq!(b.vec.get(BlameCategory::Overhead), Dur::from_us(10).as_ns());
    }

    #[test]
    fn chain_partitions_batch_exactly() {
        let mut g = SpanGraph::new();
        // Kernel [1, 40] on gpu0, ready at 1 (no queue).
        let k = g.record(
            BlameCategory::GatherPool,
            Lane::Gpu(0),
            t(1),
            t(1),
            t(40),
            None,
            false,
        );
        // Wire [55, 80], ready at 41 (queued 14 µs on the link).
        let w = g.record(
            BlameCategory::WireIntra,
            Lane::Link(0, 1),
            t(41),
            t(55),
            t(80),
            Some(k),
            false,
        );
        // Sync [80, 83] caused by the wire span.
        let s = g.record(
            BlameCategory::Sync,
            Lane::Gpu(1),
            t(80),
            t(80),
            t(83),
            Some(w),
            false,
        );
        g.end_batch(t(0), t(83), Some(s));
        let b = &g.batches()[0];
        assert_eq!(b.vec.total_ns(), Dur::from_us(83).as_ns());
        let us = |c| b.vec.get(c) / 1_000;
        assert_eq!(us(BlameCategory::Sync), 3);
        assert_eq!(us(BlameCategory::WireIntra), 25);
        assert_eq!(us(BlameCategory::QueueComm), 14);
        assert_eq!(us(BlameCategory::GatherPool), 39);
        // ready->start gap of the kernel is 0; [0,1] before it is overhead,
        // plus the [40, 41] latency gap.
        assert_eq!(us(BlameCategory::Overhead), 2);
        // Segments tile the window in order.
        let mut cursor = b.start;
        for s in &b.segments {
            assert_eq!(s.start, cursor);
            cursor = s.end;
        }
        assert_eq!(cursor, b.end);
    }

    #[test]
    fn nic_bound_link_wait_bills_nic() {
        let mut g = SpanGraph::new();
        let w = g.record(
            BlameCategory::WireInter,
            Lane::Link(0, 4),
            t(0),
            t(10),
            t(20),
            None,
            true,
        );
        g.end_batch(t(0), t(20), Some(w));
        let b = &g.batches()[0];
        assert_eq!(b.vec.get(BlameCategory::Nic), Dur::from_us(10).as_ns());
        assert_eq!(
            b.vec.get(BlameCategory::WireInter),
            Dur::from_us(10).as_ns()
        );
        assert!(b.vec.exposed_comm_share() > 0.99);
    }

    #[test]
    fn spans_outside_window_are_clamped() {
        let mut g = SpanGraph::new();
        // Span straddling the batch start (carried over from a prior batch).
        let w = g.record(
            BlameCategory::WireIntra,
            Lane::Link(0, 1),
            t(0),
            t(0),
            t(30),
            None,
            false,
        );
        g.end_batch(t(10), t(30), Some(w));
        let b = &g.batches()[0];
        assert_eq!(b.vec.total_ns(), Dur::from_us(20).as_ns());
        assert_eq!(
            b.vec.get(BlameCategory::WireIntra),
            Dur::from_us(20).as_ns()
        );
    }

    #[test]
    fn inbound_outbound_keep_latest_ending() {
        let mut g = SpanGraph::new();
        let a = g.record(
            BlameCategory::WireIntra,
            Lane::Link(0, 1),
            t(0),
            t(0),
            t(50),
            None,
            false,
        );
        let b = g.record(
            BlameCategory::WireIntra,
            Lane::Link(2, 1),
            t(0),
            t(0),
            t(20),
            None,
            false,
        );
        g.note_inbound(1, a);
        g.note_inbound(1, b); // ends earlier: must not displace a
        assert_eq!(g.last_inbound(1), Some(a));
        g.note_outbound(2, b);
        assert_eq!(g.last_outbound(2), Some(b));
        assert_eq!(g.last_outbound(0), None);
    }

    #[test]
    fn folded_output_names_lanes_and_categories() {
        let mut g = SpanGraph::new();
        let k = g.record(
            BlameCategory::GatherPool,
            Lane::Gpu(0),
            t(0),
            t(0),
            t(10),
            None,
            false,
        );
        g.end_batch(t(0), t(10), Some(k));
        let folded = g.folded();
        assert_eq!(folded.trim(), "critical_path;gpu0;gather_pool 10000");
    }

    #[test]
    fn end_batch_resets_cursor_state_but_not_lane_horizons() {
        let mut g = SpanGraph::new();
        let k = g.record(
            BlameCategory::GatherPool,
            Lane::Gpu(0),
            t(0),
            t(0),
            t(10),
            None,
            false,
        );
        g.set_kind(BlameCategory::Gemm);
        g.set_cause(Some(k));
        g.set_device_cause(0, Some(k));
        g.note_outbound(0, k);
        g.end_batch(t(0), t(10), Some(k));
        assert_eq!(g.kind(), BlameCategory::GatherPool);
        assert_eq!(g.cause(), None);
        assert_eq!(g.device_cause(0), None);
        assert_eq!(g.last_outbound(0), Some(k));
    }
}
