//! # telemetry — deterministic, opt-in observability for the simulation stack
//!
//! A metrics registry wired through every layer of the reproduction (fabric,
//! PGAS runtime, collectives, retrieval backends, online serving). Three
//! properties drive the design:
//!
//! 1. **Opt-in, zero-cost when off.** Every registry starts
//!    [`Registry::disabled`]; each recording method is a single branch on
//!    `enabled` before touching any storage, so hot paths (the per-message
//!    fabric send, kernel launches) never allocate when telemetry is off —
//!    the default everywhere — and every pre-existing artifact stays
//!    byte-identical.
//! 2. **Deterministic snapshots.** Metrics are keyed by a static name plus
//!    two small numeric labels ([`MetricKey`]) in `BTreeMap`s, so
//!    [`Registry::snapshot`] is sorted by construction and independent of
//!    insertion order. All recording happens through `&mut Machine`, which
//!    the simulator already serialises, so snapshots are bit-identical at
//!    any `RAYON_NUM_THREADS` width.
//! 3. **No hot-path string formatting.** Label rendering (`name{i=..,j=..}`)
//!    happens only at snapshot/exposition time.
//!
//! Four metric kinds: monotonic [`Counter`](Registry::add)s, last/max
//! [`gauge`](Registry::gauge_set)s, fixed-bucket [`FixedHistogram`]s
//! (static bound slices, e.g. [`US_BOUNDS`]), and time-bucketed utilization
//! **timelines** ([`Registry::span`]) built on [`desim::TimeSeries`]: each
//! span deposits its overlap in nanoseconds into every bucket it crosses,
//! so `value / bucket_ns` is the fraction of that bucket the resource was
//! busy — the quantity behind the paper's "smoothed network usage" claim.
//!
//! [`Snapshot`] renders as Prometheus-style text exposition
//! ([`Snapshot::to_prometheus`]) and as a JSON document
//! ([`Snapshot::to_json`]) checked by the same [`validate_json_doc`]
//! validator used for every `BENCH_*.json` artifact in this repo.

#![warn(missing_docs)]

pub mod causal;

use std::collections::BTreeMap;
use std::fmt::Write as _;

use desim::{Dur, SimTime, TimeSeries};

/// Identity of one metric: a static name plus two small numeric labels.
///
/// The labels are metric-specific: per-link metrics use `(src, dst)`,
/// per-device metrics use `(dev, 0)`, global metrics use `(0, 0)`, and the
/// retrieval backends use `(backend_id, 0)`. Keeping labels numeric means
/// recording never formats or allocates; rendering happens at snapshot time.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MetricKey {
    /// Static metric name, e.g. `"link_busy_ns"`.
    pub name: &'static str,
    /// First numeric label (source device, device id, or backend id).
    pub i: u32,
    /// Second numeric label (destination device, or 0 when unused).
    pub j: u32,
}

impl MetricKey {
    /// `name{i="..",j=".."}` — the Prometheus-style rendering of this key.
    pub fn render(&self) -> String {
        format!("{}{{i=\"{}\",j=\"{}\"}}", self.name, self.i, self.j)
    }
}

/// Fixed-bucket histogram upper bounds for microsecond-scale latencies.
pub const US_BOUNDS: &[u64] = &[
    50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000,
];

/// Fixed-bucket histogram upper bounds for per-message payload bytes.
pub const BYTES_BOUNDS: &[u64] = &[
    256,
    1 << 10,
    4 << 10,
    16 << 10,
    64 << 10,
    256 << 10,
    1 << 20,
    4 << 20,
];

/// Fixed-bucket histogram upper bounds for percentages (batch fill).
pub const PCT_BOUNDS: &[u64] = &[10, 25, 50, 75, 90, 100];

/// Histogram over a **static** set of upper bounds (`le` in Prometheus
/// terms) plus an implicit overflow bucket. Bounds are shared `&'static`
/// slices so recording never clones them and snapshots can compare cheaply.
#[derive(Clone, Debug, PartialEq)]
pub struct FixedHistogram {
    bounds: &'static [u64],
    counts: Vec<u64>,
    total: u64,
    sum: u128,
    /// Exemplar: `(value, trace_id)` of the largest traced observation, so
    /// a p99/p999 report can name the offending request. Only
    /// [`FixedHistogram::record_traced`] sets it; plain records leave it
    /// untouched, keeping historical artifacts byte-identical.
    max_sample: Option<(u64, u64)>,
}

impl FixedHistogram {
    /// Empty histogram over `bounds` (must be strictly increasing).
    pub fn new(bounds: &'static [u64]) -> Self {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]));
        Self {
            bounds,
            counts: vec![0; bounds.len() + 1],
            total: 0,
            sum: 0,
            max_sample: None,
        }
    }

    /// Record one observation.
    pub fn record(&mut self, value: u64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.total += 1;
        self.sum += u128::from(value);
    }

    /// Record one observation carrying a trace id; retains the largest
    /// such `(value, trace_id)` pair as the histogram's exemplar. Ties
    /// keep the earlier exemplar, so snapshots stay deterministic.
    pub fn record_traced(&mut self, value: u64, trace_id: u64) {
        self.record(value);
        match self.max_sample {
            Some((v, _)) if v >= value => {}
            _ => self.max_sample = Some((value, trace_id)),
        }
    }

    /// The `(value, trace_id)` exemplar of the max traced observation.
    pub fn max_sample(&self) -> Option<(u64, u64)> {
        self.max_sample
    }

    /// Upper bounds (exclusive of the implicit overflow bucket).
    pub fn bounds(&self) -> &'static [u64] {
        self.bounds
    }

    /// Per-bucket counts; the final entry is the overflow (`+Inf`) bucket.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total number of observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Mean observation, or 0 if empty.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }
}

/// Deterministic, opt-in metrics registry. See the crate docs for the
/// determinism contract; the short version: keys are `BTreeMap`-ordered and
/// every mutation happens behind `&mut`, so two runs of the same workload
/// produce identical snapshots regardless of host thread width.
#[derive(Clone, Debug, Default)]
pub struct Registry {
    enabled: bool,
    bucket: Dur,
    counters: BTreeMap<MetricKey, u64>,
    gauges: BTreeMap<MetricKey, f64>,
    histograms: BTreeMap<MetricKey, FixedHistogram>,
    timelines: BTreeMap<MetricKey, TimeSeries>,
}

impl Registry {
    /// A registry that records nothing — the default on every `Machine`.
    pub fn disabled() -> Self {
        Self::default()
    }

    /// A recording registry whose timelines use `bucket`-wide time buckets.
    ///
    /// # Panics
    /// If `bucket` is zero.
    pub fn enabled(bucket: Dur) -> Self {
        assert!(!bucket.is_zero(), "telemetry bucket must be non-zero");
        Self {
            enabled: true,
            bucket,
            ..Self::default()
        }
    }

    /// Whether this registry records anything at all.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Timeline bucket width (zero when disabled).
    pub fn bucket(&self) -> Dur {
        self.bucket
    }

    /// Add `v` to the counter `name{i,j}`.
    #[inline]
    pub fn add(&mut self, name: &'static str, i: u32, j: u32, v: u64) {
        if !self.enabled {
            return;
        }
        *self.counters.entry(MetricKey { name, i, j }).or_insert(0) += v;
    }

    /// Increment the counter `name{i,j}` by one.
    #[inline]
    pub fn incr(&mut self, name: &'static str, i: u32, j: u32) {
        self.add(name, i, j, 1);
    }

    /// Set the gauge `name{i,j}` to `v` (last-write-wins).
    #[inline]
    pub fn gauge_set(&mut self, name: &'static str, i: u32, j: u32, v: f64) {
        if !self.enabled {
            return;
        }
        self.gauges.insert(MetricKey { name, i, j }, v);
    }

    /// Raise the gauge `name{i,j}` to `v` if `v` exceeds its current value.
    #[inline]
    pub fn gauge_max(&mut self, name: &'static str, i: u32, j: u32, v: f64) {
        if !self.enabled {
            return;
        }
        let g = self.gauges.entry(MetricKey { name, i, j }).or_insert(v);
        if v > *g {
            *g = v;
        }
    }

    /// Record `value` into the fixed-bucket histogram `name{i,j}` over
    /// `bounds`. The first observation fixes the bound set; later calls
    /// must pass the same slice.
    #[inline]
    pub fn observe(
        &mut self,
        name: &'static str,
        i: u32,
        j: u32,
        bounds: &'static [u64],
        value: u64,
    ) {
        if !self.enabled {
            return;
        }
        self.histograms
            .entry(MetricKey { name, i, j })
            .or_insert_with(|| FixedHistogram::new(bounds))
            .record(value);
    }

    /// Like [`Registry::observe`] but carrying a request trace id: the
    /// histogram retains the `(value, trace_id)` exemplar of its largest
    /// traced sample (see [`FixedHistogram::record_traced`]).
    #[inline]
    pub fn observe_traced(
        &mut self,
        name: &'static str,
        i: u32,
        j: u32,
        bounds: &'static [u64],
        value: u64,
        trace_id: u64,
    ) {
        if !self.enabled {
            return;
        }
        self.histograms
            .entry(MetricKey { name, i, j })
            .or_insert_with(|| FixedHistogram::new(bounds))
            .record_traced(value, trace_id);
    }

    /// Deposit the busy interval `[start, end)` into the timeline
    /// `name{i,j}`: each time bucket the interval crosses receives its
    /// overlap in **nanoseconds**, so `bucket_value / bucket_ns` is the
    /// fraction of that bucket the resource was occupied. Degenerate
    /// intervals (`end <= start`) record nothing.
    #[inline]
    pub fn span(&mut self, name: &'static str, i: u32, j: u32, start: SimTime, end: SimTime) {
        if !self.enabled || end <= start {
            return;
        }
        let bucket = self.bucket;
        self.timelines
            .entry(MetricKey { name, i, j })
            .or_insert_with(|| TimeSeries::new(bucket))
            .add_spread(start, end, end.since(start).as_ns() as f64);
    }

    /// Current value of a counter (0 if never touched).
    pub fn counter(&self, name: &'static str, i: u32, j: u32) -> u64 {
        self.counters
            .get(&MetricKey { name, i, j })
            .copied()
            .unwrap_or(0)
    }

    /// Current value of a gauge, if it was ever set.
    pub fn gauge(&self, name: &'static str, i: u32, j: u32) -> Option<f64> {
        self.gauges.get(&MetricKey { name, i, j }).copied()
    }

    /// A histogram by key, if it was ever observed into.
    pub fn histogram(&self, name: &'static str, i: u32, j: u32) -> Option<&FixedHistogram> {
        self.histograms.get(&MetricKey { name, i, j })
    }

    /// A busy-time timeline by key, if any span was ever recorded.
    pub fn timeline(&self, name: &'static str, i: u32, j: u32) -> Option<&TimeSeries> {
        self.timelines.get(&MetricKey { name, i, j })
    }

    /// Iterate all timelines sharing `name`, in label order.
    pub fn timelines_named<'a>(
        &'a self,
        name: &'static str,
    ) -> impl Iterator<Item = (MetricKey, &'a TimeSeries)> {
        self.timelines
            .iter()
            .filter(move |(k, _)| k.name == name)
            .map(|(k, ts)| (*k, ts))
    }

    /// Windowed view of everything recorded since `prior` was taken from
    /// **this** registry: counters and histogram bucket counts are
    /// subtracted entry-wise (keys absent from `prior` keep their full
    /// value), gauges and timelines carry their current values (gauges are
    /// levels, not accumulations; timelines are already time-indexed).
    ///
    /// This is the one place cumulative metrics get diffed — the serving
    /// control plane and any scrape-style exposition both read rates
    /// through it instead of re-diffing counters ad hoc. Like
    /// [`Registry::snapshot`], the result is sorted by key and comparable
    /// with `==` across runs. `delta_since(&Snapshot::default())` equals
    /// `snapshot()` for a registry with no timelines recorded under a
    /// different bucket width.
    pub fn delta_since(&self, prior: &Snapshot) -> Snapshot {
        let counters = self
            .counters
            .iter()
            .map(|(k, v)| {
                let base = prior
                    .counters
                    .binary_search_by(|(pk, _)| pk.cmp(k))
                    .map(|idx| prior.counters[idx].1)
                    .unwrap_or(0);
                (*k, v.saturating_sub(base))
            })
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|(k, h)| {
                let mut h = h.clone();
                if let Ok(idx) = prior.histograms.binary_search_by(|(pk, _)| pk.cmp(k)) {
                    let base = &prior.histograms[idx].1;
                    if base.bounds() == h.bounds() {
                        for (c, b) in h.counts.iter_mut().zip(base.counts()) {
                            *c = c.saturating_sub(*b);
                        }
                        h.total = h.total.saturating_sub(base.total());
                        h.sum = h.sum.saturating_sub(base.sum());
                    }
                }
                (*k, h)
            })
            .collect();
        Snapshot {
            bucket_ns: self.bucket.as_ns(),
            counters,
            gauges: self.gauges.iter().map(|(k, v)| (*k, *v)).collect(),
            histograms,
            timelines: self
                .timelines
                .iter()
                .map(|(k, ts)| (*k, ts.buckets().to_vec()))
                .collect(),
        }
    }

    /// Point-in-time copy of every metric, sorted by key. Comparable with
    /// `==` across runs — the unit the determinism tests assert on.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            bucket_ns: self.bucket.as_ns(),
            counters: self.counters.iter().map(|(k, v)| (*k, *v)).collect(),
            gauges: self.gauges.iter().map(|(k, v)| (*k, *v)).collect(),
            histograms: self
                .histograms
                .iter()
                .map(|(k, h)| (*k, h.clone()))
                .collect(),
            timelines: self
                .timelines
                .iter()
                .map(|(k, ts)| (*k, ts.buckets().to_vec()))
                .collect(),
        }
    }
}

/// Sorted, comparable copy of a [`Registry`] at one instant.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Snapshot {
    /// Timeline bucket width in nanoseconds.
    pub bucket_ns: u64,
    /// All counters, sorted by key.
    pub counters: Vec<(MetricKey, u64)>,
    /// All gauges, sorted by key.
    pub gauges: Vec<(MetricKey, f64)>,
    /// All fixed-bucket histograms, sorted by key.
    pub histograms: Vec<(MetricKey, FixedHistogram)>,
    /// All timelines (per-bucket busy nanoseconds), sorted by key.
    pub timelines: Vec<(MetricKey, Vec<f64>)>,
}

impl Snapshot {
    /// Value of a counter in this snapshot, 0 if absent — the lookup the
    /// serving control plane uses on [`Registry::delta_since`] windows.
    pub fn counter(&self, name: &str, i: u32, j: u32) -> u64 {
        self.counters
            .iter()
            .find(|(k, _)| k.name == name && k.i == i && k.j == j)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    /// Sum of a counter across all labels sharing `name`.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(k, _)| k.name == name)
            .map(|(_, v)| v)
            .sum()
    }

    /// Prometheus-style text exposition: counters and gauges as
    /// `name{i="..",j=".."} value`, histograms as the conventional
    /// `_bucket{le=..}` / `_sum` / `_count` triple, timelines as a
    /// `_total_ns` rollup (the full series lives in [`Snapshot::to_json`]).
    /// Each metric name gets exactly one `# HELP` and one `# TYPE` line,
    /// emitted before its first sample as the exposition format requires —
    /// keys are sorted, so "first sample" is well-defined.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last = "";
        for (k, v) in &self.counters {
            if k.name != last {
                let _ = writeln!(out, "# HELP {} simulation counter", k.name);
                let _ = writeln!(out, "# TYPE {} counter", k.name);
                last = k.name;
            }
            let _ = writeln!(out, "{} {}", k.render(), v);
        }
        last = "";
        for (k, v) in &self.gauges {
            if k.name != last {
                let _ = writeln!(out, "# HELP {} simulation gauge", k.name);
                let _ = writeln!(out, "# TYPE {} gauge", k.name);
                last = k.name;
            }
            let _ = writeln!(out, "{} {}", k.render(), fmt_f64(*v));
        }
        last = "";
        for (k, h) in &self.histograms {
            if k.name != last {
                let _ = writeln!(out, "# HELP {} simulation histogram", k.name);
                let _ = writeln!(out, "# TYPE {} histogram", k.name);
                last = k.name;
            }
            let mut cum = 0u64;
            for (idx, c) in h.counts().iter().enumerate() {
                cum += c;
                let le = h
                    .bounds()
                    .get(idx)
                    .map(|b| b.to_string())
                    .unwrap_or_else(|| "+Inf".into());
                let _ = writeln!(
                    out,
                    "{}_bucket{{i=\"{}\",j=\"{}\",le=\"{}\"}} {}",
                    k.name, k.i, k.j, le, cum
                );
            }
            let _ = writeln!(
                out,
                "{}_sum{{i=\"{}\",j=\"{}\"}} {}",
                k.name,
                k.i,
                k.j,
                h.sum()
            );
            let _ = writeln!(
                out,
                "{}_count{{i=\"{}\",j=\"{}\"}} {}",
                k.name,
                k.i,
                k.j,
                h.total()
            );
        }
        last = "";
        for (k, series) in &self.timelines {
            if k.name != last {
                let _ = writeln!(out, "# HELP {}_total_ns simulation timeline rollup", k.name);
                let _ = writeln!(out, "# TYPE {}_total_ns counter", k.name);
                last = k.name;
            }
            let total: f64 = series.iter().sum();
            let _ = writeln!(
                out,
                "{}_total_ns{{i=\"{}\",j=\"{}\"}} {}",
                k.name,
                k.i,
                k.j,
                fmt_f64(total)
            );
        }
        out
    }

    /// The snapshot as a JSON document (hand-rolled, no serde in this
    /// repo); always passes [`validate_json_doc`].
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"bucket_ns\": {},", self.bucket_ns);
        out.push_str("  \"counters\": [\n");
        for (idx, (k, v)) in self.counters.iter().enumerate() {
            let _ = writeln!(
                out,
                "    {{\"name\": \"{}\", \"i\": {}, \"j\": {}, \"value\": {}}}{}",
                k.name,
                k.i,
                k.j,
                v,
                comma(idx, self.counters.len())
            );
        }
        out.push_str("  ],\n  \"gauges\": [\n");
        for (idx, (k, v)) in self.gauges.iter().enumerate() {
            let _ = writeln!(
                out,
                "    {{\"name\": \"{}\", \"i\": {}, \"j\": {}, \"value\": {}}}{}",
                k.name,
                k.i,
                k.j,
                fmt_f64(*v),
                comma(idx, self.gauges.len())
            );
        }
        out.push_str("  ],\n  \"histograms\": [\n");
        for (idx, (k, h)) in self.histograms.iter().enumerate() {
            let bounds: Vec<String> = h.bounds().iter().map(|b| b.to_string()).collect();
            let counts: Vec<String> = h.counts().iter().map(|c| c.to_string()).collect();
            // Exemplar fields appear only when a traced sample exists, so
            // snapshots from untraced runs stay byte-identical to before
            // exemplars existed.
            let exemplar = match h.max_sample() {
                Some((v, id)) => format!(", \"exemplar_value\": {v}, \"exemplar_trace\": {id}"),
                None => String::new(),
            };
            let _ = writeln!(
                out,
                "    {{\"name\": \"{}\", \"i\": {}, \"j\": {}, \"bounds\": [{}], \"counts\": [{}], \"count\": {}, \"sum\": {}{}}}{}",
                k.name,
                k.i,
                k.j,
                bounds.join(", "),
                counts.join(", "),
                h.total(),
                h.sum(),
                exemplar,
                comma(idx, self.histograms.len())
            );
        }
        out.push_str("  ],\n  \"timelines\": [\n");
        for (idx, (k, series)) in self.timelines.iter().enumerate() {
            let vals: Vec<String> = series.iter().map(|v| fmt_f64(*v)).collect();
            let _ = writeln!(
                out,
                "    {{\"name\": \"{}\", \"i\": {}, \"j\": {}, \"busy_ns\": [{}]}}{}",
                k.name,
                k.i,
                k.j,
                vals.join(", "),
                comma(idx, self.timelines.len())
            );
        }
        out.push_str("  ]\n}\n");
        out
    }
}

fn comma(idx: usize, len: usize) -> &'static str {
    if idx + 1 < len {
        ","
    } else {
        ""
    }
}

/// Format an `f64` for JSON/exposition: finite, decimal, deterministic.
/// Non-finite values (which the registry never produces from valid spans)
/// are clamped to 0 so artifacts always validate.
fn fmt_f64(v: f64) -> String {
    if !v.is_finite() {
        return "0".into();
    }
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.6}")
    }
}

/// Minimal structural validation shared by every hand-rolled `BENCH_*.json`
/// artifact and the Chrome-trace exports: balanced braces/brackets outside
/// strings, every key in `required_keys` present, and no NaN/infinite
/// numbers. Returns a description of the first problem.
pub fn validate_json_doc(s: &str, required_keys: &[&str]) -> Result<(), String> {
    let mut depth_brace = 0i64;
    let mut depth_bracket = 0i64;
    let mut in_string = false;
    let mut prev_escape = false;
    // Everything outside string literals, so the non-finite-number scan
    // below does not trip on key names that merely contain "inf".
    let mut structural = String::with_capacity(s.len());
    for c in s.chars() {
        if in_string {
            if prev_escape {
                prev_escape = false;
            } else if c == '\\' {
                prev_escape = true;
            } else if c == '"' {
                in_string = false;
            }
            continue;
        }
        match c {
            '"' => in_string = true,
            '{' => depth_brace += 1,
            '}' => depth_brace -= 1,
            '[' => depth_bracket += 1,
            ']' => depth_bracket -= 1,
            _ => {}
        }
        structural.push(c);
        if depth_brace < 0 || depth_bracket < 0 {
            return Err("unbalanced close before open".into());
        }
    }
    if in_string {
        return Err("unterminated string".into());
    }
    if depth_brace != 0 || depth_bracket != 0 {
        return Err(format!(
            "unbalanced nesting: braces {depth_brace:+}, brackets {depth_bracket:+}"
        ));
    }
    for key in required_keys {
        if !s.contains(key) {
            return Err(format!("missing key {key}"));
        }
    }
    for bad in ["NaN", "inf", "Infinity"] {
        if structural.contains(bad) {
            return Err(format!("non-finite number {bad}"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::ZERO + Dur::from_us(us)
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let mut r = Registry::disabled();
        r.add("c", 0, 0, 5);
        r.gauge_set("g", 0, 0, 1.0);
        r.observe("h", 0, 0, US_BOUNDS, 10);
        r.span("t", 0, 0, t(0), t(100));
        let s = r.snapshot();
        assert_eq!(s, Snapshot::default());
        assert!(!r.is_enabled());
    }

    #[test]
    fn counters_gauges_histograms_accumulate() {
        let mut r = Registry::enabled(Dur::from_us(10));
        r.add("msgs", 0, 1, 3);
        r.incr("msgs", 0, 1);
        assert_eq!(r.counter("msgs", 0, 1), 4);
        assert_eq!(r.counter("msgs", 1, 0), 0);

        r.gauge_set("depth", 0, 0, 2.0);
        r.gauge_max("depth", 0, 0, 5.0);
        r.gauge_max("depth", 0, 0, 1.0);
        assert_eq!(r.gauge("depth", 0, 0), Some(5.0));

        r.observe("lat_us", 0, 0, US_BOUNDS, 60);
        r.observe("lat_us", 0, 0, US_BOUNDS, 1_000_000);
        let h = r.histogram("lat_us", 0, 0).unwrap();
        assert_eq!(h.total(), 2);
        assert_eq!(h.counts()[1], 1); // 60 <= 100
        assert_eq!(*h.counts().last().unwrap(), 1); // overflow
        assert_eq!(h.sum(), 1_000_060);
    }

    #[test]
    fn span_deposits_busy_ns_per_bucket() {
        let mut r = Registry::enabled(Dur::from_us(10));
        // 15 µs of busy time: fills bucket 0, half of bucket 1.
        r.span("busy", 2, 3, t(0), t(15));
        let ts = r.timeline("busy", 2, 3).unwrap();
        let b = ts.buckets();
        assert!((b[0] - 10_000.0).abs() < 1e-6);
        assert!((b[1] - 5_000.0).abs() < 1e-6);
        // Degenerate span is a no-op.
        r.span("busy", 2, 3, t(20), t(20));
        assert_eq!(r.timeline("busy", 2, 3).unwrap().buckets().len(), 2);
    }

    #[test]
    fn snapshot_order_is_insertion_independent() {
        let mut a = Registry::enabled(Dur::from_us(10));
        let mut b = Registry::enabled(Dur::from_us(10));
        a.add("x", 0, 1, 1);
        a.add("x", 1, 0, 2);
        a.add("a", 9, 9, 3);
        b.add("a", 9, 9, 3);
        b.add("x", 1, 0, 2);
        b.add("x", 0, 1, 1);
        assert_eq!(a.snapshot(), b.snapshot());
        let names: Vec<_> = a
            .snapshot()
            .counters
            .iter()
            .map(|(k, _)| k.render())
            .collect();
        assert_eq!(
            names,
            vec![
                "a{i=\"9\",j=\"9\"}",
                "x{i=\"0\",j=\"1\"}",
                "x{i=\"1\",j=\"0\"}"
            ]
        );
    }

    #[test]
    fn delta_since_subtracts_counters_and_histogram_buckets() {
        let mut r = Registry::enabled(Dur::from_us(10));
        r.add("msgs", 0, 1, 10);
        r.observe("lat_us", 0, 0, US_BOUNDS, 60);
        r.gauge_set("depth", 0, 0, 2.0);
        let base = r.snapshot();

        r.add("msgs", 0, 1, 5);
        r.add("new_counter", 2, 2, 7); // absent from the baseline
        r.observe("lat_us", 0, 0, US_BOUNDS, 60);
        r.observe("lat_us", 0, 0, US_BOUNDS, 1_000_000);
        r.gauge_set("depth", 0, 0, 9.0);

        let d = r.delta_since(&base);
        assert_eq!(d.counter("msgs", 0, 1), 5);
        assert_eq!(d.counter("new_counter", 2, 2), 7);
        assert_eq!(d.counter_total("msgs"), 5);
        // Gauges are levels: the delta carries the current value.
        assert_eq!(
            d.gauges,
            vec![(
                MetricKey {
                    name: "depth",
                    i: 0,
                    j: 0
                },
                9.0
            )]
        );
        let (_, h) = &d.histograms[0];
        assert_eq!(h.total(), 2);
        assert_eq!(h.counts()[1], 1); // one new 60 µs observation
        assert_eq!(*h.counts().last().unwrap(), 1); // one new overflow
        assert_eq!(h.sum(), 1_000_060);
    }

    #[test]
    fn delta_since_empty_baseline_equals_snapshot() {
        let mut r = Registry::enabled(Dur::from_us(10));
        r.add("c", 0, 0, 3);
        r.observe("h", 1, 0, US_BOUNDS, 99);
        r.span("t", 0, 1, t(0), t(15));
        assert_eq!(r.delta_since(&Snapshot::default()), r.snapshot());
        // Deltas are deterministic and key-sorted exactly like snapshots.
        assert_eq!(
            r.delta_since(&Snapshot::default()),
            r.delta_since(&Snapshot::default())
        );
    }

    #[test]
    fn delta_since_full_baseline_is_zero_counters() {
        let mut r = Registry::enabled(Dur::from_us(10));
        r.add("c", 0, 0, 3);
        r.observe("h", 1, 0, US_BOUNDS, 99);
        let snap = r.snapshot();
        let d = r.delta_since(&snap);
        assert_eq!(d.counter("c", 0, 0), 0);
        assert_eq!(d.histograms[0].1.total(), 0);
        assert_eq!(d.histograms[0].1.sum(), 0);
    }

    #[test]
    fn prometheus_and_json_expositions_are_well_formed() {
        let mut r = Registry::enabled(Dur::from_us(10));
        r.add("fabric_messages", 0, 1, 7);
        r.add("fabric_messages", 1, 0, 3);
        r.add("fabric_messages", 2, 1, 4);
        r.gauge_set("serve_queue_depth", 0, 0, 3.0);
        r.observe("serve_latency_us", 0, 0, US_BOUNDS, 420);
        r.observe("serve_latency_us", 1, 0, US_BOUNDS, 90);
        r.span("link_busy_ns", 0, 1, t(0), t(25));
        let snap = r.snapshot();

        let text = snap.to_prometheus();
        assert!(text.contains("# TYPE fabric_messages counter"));
        assert!(text.contains("# HELP fabric_messages "));
        assert!(text.contains("fabric_messages{i=\"0\",j=\"1\"} 7"));
        assert!(text.contains("serve_latency_us_bucket{i=\"0\",j=\"0\",le=\"500\"} 1"));
        assert!(text.contains("serve_latency_us_count{i=\"0\",j=\"0\"} 1"));
        assert!(text.contains("link_busy_ns_total_ns{i=\"0\",j=\"1\"} 25000"));
        // Exactly one TYPE and one HELP line per metric name, even with
        // several labelled series under the same name.
        for name in ["fabric_messages", "serve_latency_us"] {
            for kind in ["# TYPE", "# HELP"] {
                let n = text
                    .lines()
                    .filter(|l| l.starts_with(&format!("{kind} {name} ")))
                    .count();
                assert_eq!(n, 1, "{kind} for {name} must appear exactly once");
            }
        }
        // Every HELP line is immediately followed by its TYPE line.
        let lines: Vec<&str> = text.lines().collect();
        for (i, l) in lines.iter().enumerate() {
            if let Some(rest) = l.strip_prefix("# HELP ") {
                let name = rest.split(' ').next().unwrap();
                assert!(
                    lines[i + 1].starts_with(&format!("# TYPE {name} ")),
                    "HELP for {name} must precede its TYPE"
                );
            }
        }

        let json = snap.to_json();
        validate_json_doc(
            &json,
            &[
                "\"bucket_ns\"",
                "\"counters\"",
                "\"gauges\"",
                "\"histograms\"",
                "\"timelines\"",
                "\"busy_ns\"",
            ],
        )
        .unwrap();
    }

    #[test]
    fn exemplar_tracks_max_traced_sample_only() {
        let mut r = Registry::enabled(Dur::from_us(10));
        r.observe("lat_us", 0, 0, US_BOUNDS, 500);
        assert_eq!(r.histogram("lat_us", 0, 0).unwrap().max_sample(), None);
        r.observe_traced("lat_us", 0, 0, US_BOUNDS, 300, 7);
        r.observe_traced("lat_us", 0, 0, US_BOUNDS, 900, 42);
        r.observe_traced("lat_us", 0, 0, US_BOUNDS, 900, 99); // tie: first wins
        r.observe_traced("lat_us", 0, 0, US_BOUNDS, 100, 13);
        let h = r.histogram("lat_us", 0, 0).unwrap();
        assert_eq!(h.max_sample(), Some((900, 42)));
        assert_eq!(h.total(), 5);
        // The exemplar rides into the snapshot JSON; untraced histograms
        // carry no exemplar fields at all.
        let json = r.snapshot().to_json();
        assert!(json.contains("\"exemplar_value\": 900, \"exemplar_trace\": 42"));
        let mut plain = Registry::enabled(Dur::from_us(10));
        plain.observe("lat_us", 0, 0, US_BOUNDS, 500);
        assert!(!plain.snapshot().to_json().contains("exemplar"));
        validate_json_doc(&json, &["\"exemplar_value\""]).unwrap();
    }

    #[test]
    fn validator_rejects_malformed_docs() {
        assert!(validate_json_doc("{\"a\": 1}", &["\"a\""]).is_ok());
        assert!(validate_json_doc("{\"a\": 1", &[]).is_err());
        assert!(validate_json_doc("{\"a\": \"unterminated}", &[]).is_err());
        assert!(validate_json_doc("{\"a\": NaN}", &[]).is_err());
        assert!(validate_json_doc("{}", &["\"missing\""]).is_err());
    }
}
