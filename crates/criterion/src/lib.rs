//! In-tree stand-in for `criterion` (the build environment has no network
//! access). Benches compile and run as smoke tests: each closure is timed
//! over a handful of iterations and a one-line mean is printed. No
//! statistics, no plots — the simulated results the benches print are the
//! interesting output in this repository.

use std::fmt::Display;
use std::time::Instant;

/// Re-export matching `criterion::black_box`.
pub use std::hint::black_box;

const WARMUP_ITERS: u32 = 1;
const MEASURE_ITERS: u32 = 3;

/// The bench driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of related benches.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
        }
    }

    /// Run one stand-alone bench.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) {
        run_one(&format!("{id}"), &mut f);
    }
}

/// A group of benches sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Declared throughput (recorded for API compatibility; unused).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Declared sample count (unused; the stub always runs a few iters).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Run one bench in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{id}", self.name), &mut f);
        self
    }

    /// Run one bench with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Display,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut g = |b: &mut Bencher| f(b, input);
        run_one(&format!("{}/{id}", self.name), &mut g);
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, f: &mut F) {
    let mut b = Bencher {
        elapsed_ns: 0,
        iters: 0,
    };
    f(&mut b);
    if b.iters > 0 {
        println!(
            "bench {label}: {:.3} ms/iter ({} iters)",
            b.elapsed_ns as f64 / b.iters as f64 / 1e6,
            b.iters
        );
    }
}

/// Passed to the bench closure; `iter` times the workload.
pub struct Bencher {
    elapsed_ns: u128,
    iters: u64,
}

impl Bencher {
    /// Time `f` over a few iterations (after one warmup call).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..WARMUP_ITERS {
            black_box(f());
        }
        let start = Instant::now();
        for _ in 0..MEASURE_ITERS {
            black_box(f());
        }
        self.elapsed_ns += start.elapsed().as_nanos();
        self.iters += MEASURE_ITERS as u64;
    }
}

/// A two-part bench identifier, `function/parameter`.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// Identifier `"{name}/{param}"`.
    pub fn new(name: impl Display, param: impl Display) -> Self {
        BenchmarkId {
            text: format!("{name}/{param}"),
        }
    }

    /// Identifier from the parameter alone.
    pub fn from_parameter(param: impl Display) -> Self {
        BenchmarkId {
            text: format!("{param}"),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

/// Declared throughput of a bench (unused by the stub).
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Group bench functions under one entry point.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("grp");
        g.sample_size(10).throughput(Throughput::Elements(4));
        g.bench_function("direct", |b| b.iter(|| 1 + 1));
        g.bench_with_input(BenchmarkId::new("with_input", 7), &7u32, |b, &x| {
            b.iter(|| x * 2)
        });
        g.finish();
        c.bench_function("standalone", |b| b.iter(|| black_box(3) * 3));
    }

    criterion_group!(benches, a_bench);

    #[test]
    fn group_runs() {
        benches();
        assert_eq!(format!("{}", BenchmarkId::new("f", 2)), "f/2");
        assert_eq!(format!("{}", BenchmarkId::from_parameter(9)), "9");
    }
}
