//! Property-based tests: collectives agree with algebraic references for
//! arbitrary inputs and algorithms.

use desim::SimTime;
use gpusim::{Machine, MachineConfig};
use proptest::prelude::*;
use simccl::{
    all_gather, all_reduce, all_to_all_single, all_to_all_varied, reduce_scatter, Algorithm,
    CollectiveConfig,
};

fn cfg_strategy() -> impl Strategy<Value = CollectiveConfig> {
    (
        prop_oneof![Just(Algorithm::Direct), Just(Algorithm::Ring)],
        prop_oneof![Just(256u64), Just(4096), Just(4 << 20)],
    )
        .prop_map(|(a, c)| {
            CollectiveConfig::default()
                .with_algorithm(a)
                .with_chunk_bytes(c)
        })
}

proptest! {
    /// all_to_all twice with the transposed traffic matrix restores every
    /// element to some device; total element count is conserved; the result
    /// matches the direct transpose reference.
    #[test]
    fn all_to_all_is_transpose(n in 1usize..5, per in 1usize..16, cfg in cfg_strategy()) {
        let mut m = Machine::new(MachineConfig::dgx_v100(n));
        let inputs: Vec<Vec<f32>> = (0..n)
            .map(|i| (0..n * per).map(|k| (i * 1000 + k) as f32).collect())
            .collect();
        let (out, work) = all_to_all_single(&mut m, &cfg, &inputs, &vec![SimTime::ZERO; n]);
        // Reference transpose.
        for (dst, o) in out.iter().enumerate() {
            prop_assert_eq!(o.len(), n * per);
            for src in 0..n {
                prop_assert_eq!(
                    &o[src * per..(src + 1) * per],
                    &inputs[src][dst * per..(dst + 1) * per]
                );
            }
        }
        prop_assert!(work.all_done() > SimTime::ZERO);
    }

    /// Varied all_to_all conserves elements and respects the counts matrix.
    #[test]
    fn varied_all_to_all_conserves(n in 1usize..5, counts_seed in prop::collection::vec(0usize..7, 25)) {
        let mut m = Machine::new(MachineConfig::dgx_v100(n));
        let counts: Vec<Vec<usize>> = (0..n)
            .map(|i| (0..n).map(|j| counts_seed[i * 5 + j]).collect())
            .collect();
        let inputs: Vec<Vec<f32>> = (0..n)
            .map(|i| {
                let total: usize = counts[i].iter().sum();
                (0..total).map(|k| (i * 10_000 + k) as f32).collect()
            })
            .collect();
        let (out, _) = all_to_all_varied(
            &mut m,
            &CollectiveConfig::default(),
            &inputs,
            &counts,
            &vec![SimTime::ZERO; n],
        );
        let in_total: usize = inputs.iter().map(Vec::len).sum();
        let out_total: usize = out.iter().map(Vec::len).sum();
        prop_assert_eq!(in_total, out_total);
        for (dst, o) in out.iter().enumerate() {
            let expect: usize = (0..n).map(|s| counts[s][dst]).sum();
            prop_assert_eq!(o.len(), expect);
        }
    }

    /// all_gather output is the concatenation, identical on every device,
    /// for both algorithms.
    #[test]
    fn all_gather_reference(n in 1usize..5, lens in prop::collection::vec(0usize..10, 5), cfg in cfg_strategy()) {
        let mut m = Machine::new(MachineConfig::dgx_v100(n));
        let inputs: Vec<Vec<f32>> = (0..n)
            .map(|i| (0..lens[i]).map(|k| (i * 100 + k) as f32).collect())
            .collect();
        let (out, _) = all_gather(&mut m, &cfg, &inputs, &vec![SimTime::ZERO; n]);
        let expect: Vec<f32> = inputs.iter().flatten().copied().collect();
        for o in &out {
            prop_assert_eq!(o, &expect);
        }
    }

    /// reduce_scatter + all_gather equals all_reduce functionally, and both
    /// equal the elementwise sum.
    #[test]
    fn all_reduce_is_sum(n in 1usize..5, per in 1usize..8) {
        let len = n * per;
        let inputs: Vec<Vec<f32>> = (0..n)
            .map(|i| (0..len).map(|k| ((i + 1) * (k + 1)) as f32).collect())
            .collect();
        let expect: Vec<f32> = (0..len)
            .map(|k| inputs.iter().map(|b| b[k]).sum())
            .collect();

        let mut m = Machine::new(MachineConfig::dgx_v100(n));
        let (out, _) = all_reduce(&mut m, &CollectiveConfig::default(), &inputs, &vec![SimTime::ZERO; n]);
        for o in &out {
            for (a, b) in o.iter().zip(&expect) {
                prop_assert!((a - b).abs() < 1e-3);
            }
        }

        let mut m2 = Machine::new(MachineConfig::dgx_v100(n));
        let (rs, _) = reduce_scatter(&mut m2, &CollectiveConfig::default(), &inputs, &vec![SimTime::ZERO; n]);
        let flat: Vec<f32> = rs.iter().flatten().copied().collect();
        for (a, b) in flat.iter().zip(&expect) {
            prop_assert!((a - b).abs() < 1e-3);
        }
    }

    /// Later ready times can only delay completion (monotonicity).
    #[test]
    fn ready_time_monotonicity(delay_us in 0u64..10_000) {
        let n = 3;
        let inputs: Vec<Vec<f32>> = (0..n).map(|_| vec![1.0f32; 3 * 64]).collect();
        let mut m1 = Machine::new(MachineConfig::dgx_v100(n));
        let (_, w1) = all_to_all_single(&mut m1, &CollectiveConfig::default(), &inputs, &vec![SimTime::ZERO; n]);
        let mut m2 = Machine::new(MachineConfig::dgx_v100(n));
        let late = vec![SimTime::from_us(delay_us); n];
        let (_, w2) = all_to_all_single(&mut m2, &CollectiveConfig::default(), &inputs, &late);
        prop_assert!(w2.all_done() >= w1.all_done());
    }
}
