//! # simccl — NCCL-like collectives over the simulated fabric
//!
//! The baseline communication substrate of the reproduction. It implements
//! the collective calls a PyTorch + NCCL DLRM uses — most importantly
//! [`all_to_all_single`], which the paper's
//! baseline invokes at the end of the embedding-table forward pass — plus
//! `all_gather`, `reduce_scatter`, `all_reduce` and `broadcast` for the
//! backward-pass extension.
//!
//! Every collective is **functional and timed at once**: it really moves the
//! `f32` buffers (so outputs can be checked against references) and it
//! simulates the wire traffic on the [`gpusim::Machine`], returning a
//! [`WorkHandle`] with per-device completion times — the analogue of the
//! async work object PyTorch returns when `async_op=True`.
//!
//! Two algorithms are provided:
//!
//! * [`Algorithm::Direct`] — pairwise peer-to-peer transfers, what NCCL uses
//!   on an NVLink crossbar (the paper's testbed).
//! * [`Algorithm::Ring`] — neighbor forwarding in `n−1` steps, the classic
//!   fallback on sparse topologies.

#![warn(missing_docs)]

mod alltoall;
mod config;
mod gatherreduce;
mod work;

pub use alltoall::{
    all_to_all_single, all_to_all_timed, all_to_all_varied, try_all_to_all_timed,
    try_all_to_all_varied,
};
pub use config::{Algorithm, CollectiveConfig};
pub use gatherreduce::{all_gather, all_reduce, all_reduce_timed, broadcast, reduce_scatter};
pub use work::WorkHandle;

/// The shared fault taxonomy and retry schedule, re-exported so collective
/// callers need not depend on `gpusim` directly.
pub use gpusim::{FabricError, RetryPolicy};

use desim::Dur;

/// Size of one `f32` element on the wire.
pub const ELEM_BYTES: u64 = 4;

pub(crate) fn d2d_copy_time(bytes: u64, mem_bw: f64) -> Dur {
    // Device-local copy reads and writes every byte.
    Dur::from_secs_f64(2.0 * bytes as f64 / mem_bw)
}
