//! Collective configuration.

use desim::Dur;
use gpusim::RetryPolicy;

/// Which communication schedule a collective uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Algorithm {
    /// Pairwise peer-to-peer over the crossbar (NCCL on NVLink).
    Direct,
    /// Neighbor-ring forwarding in `n − 1` steps.
    Ring,
    /// Topology-aware two-level schedule for pod fabrics: intra-node pairs
    /// go direct over the crossbar; cross-node traffic is gathered to the
    /// source node's gateway, crosses the slow tier as one aggregate
    /// transfer per ordered node pair, then scatters inside the destination
    /// node. On a single-node topology this is exactly [`Algorithm::Direct`].
    Hierarchical,
}

/// Tuning knobs shared by all collectives.
#[derive(Clone, Copy, Debug)]
pub struct CollectiveConfig {
    /// Schedule to use.
    pub algorithm: Algorithm,
    /// Pipeline chunk size in bytes; a transfer is split into messages of at
    /// most this size (NCCL's default buffer is 4 MiB).
    pub chunk_bytes: u64,
    /// CPU-side cost of triggering the collective (argument marshalling,
    /// enqueueing the NCCL kernel). Part of the paper's "communication
    /// control path" overhead.
    pub call_overhead: Dur,
    /// Wire efficiency of the collective's transport relative to raw
    /// one-sided stores, in `(0, 1]`. NCCL's transfers pay internal staging
    /// copies, protocol handshakes and bidirectional contention that direct
    /// GPU stores do not; 0.45 is calibrated from the paper's measured
    /// baseline communication phase (DESIGN.md §4).
    pub protocol_efficiency: f64,
    /// Retry schedule the fallible (`try_`) collectives use per chunk.
    pub retry: RetryPolicy,
}

impl Default for CollectiveConfig {
    fn default() -> Self {
        CollectiveConfig {
            algorithm: Algorithm::Direct,
            chunk_bytes: 4 << 20,
            call_overhead: Dur::from_us(15),
            protocol_efficiency: 0.45,
            retry: RetryPolicy::default(),
        }
    }
}

impl CollectiveConfig {
    /// Override the algorithm.
    pub fn with_algorithm(mut self, a: Algorithm) -> Self {
        self.algorithm = a;
        self
    }

    /// Override the chunk size. Panics on zero.
    pub fn with_chunk_bytes(mut self, c: u64) -> Self {
        assert!(c > 0, "chunk_bytes must be positive");
        self.chunk_bytes = c;
        self
    }

    /// Number of messages a `bytes`-sized transfer becomes.
    pub fn n_chunks(&self, bytes: u64) -> u64 {
        bytes.div_ceil(self.chunk_bytes).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_direct_4mib() {
        let c = CollectiveConfig::default();
        assert_eq!(c.algorithm, Algorithm::Direct);
        assert_eq!(c.chunk_bytes, 4 << 20);
    }

    #[test]
    fn n_chunks_rounds_up() {
        let c = CollectiveConfig::default().with_chunk_bytes(100);
        assert_eq!(c.n_chunks(0), 1);
        assert_eq!(c.n_chunks(1), 1);
        assert_eq!(c.n_chunks(100), 1);
        assert_eq!(c.n_chunks(101), 2);
        assert_eq!(c.n_chunks(1000), 10);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_chunk_panics() {
        let _ = CollectiveConfig::default().with_chunk_bytes(0);
    }
}
