//! `all_gather`, `reduce_scatter`, `all_reduce`, `broadcast` — used by the
//! backward-pass extension (gradient exchange, paper §V).

use desim::{Dur, SimTime};
use gpusim::Machine;

use crate::{d2d_copy_time, Algorithm, CollectiveConfig, WorkHandle, ELEM_BYTES};

/// Every device ends with the concatenation of all devices' inputs
/// (in device order). Inputs may have different lengths.
pub fn all_gather(
    machine: &mut Machine,
    cfg: &CollectiveConfig,
    inputs: &[Vec<f32>],
    ready: &[SimTime],
) -> (Vec<Vec<f32>>, WorkHandle) {
    let n = machine.n_gpus();
    assert_eq!(inputs.len(), n);
    assert_eq!(ready.len(), n);

    let gathered: Vec<f32> = inputs.iter().flat_map(|b| b.iter().copied()).collect();
    let outputs = vec![gathered; n];

    let mut done = vec![SimTime::ZERO; n];
    match cfg.algorithm {
        // Hierarchical staging only pays off for alltoall's scatter pattern;
        // an all_gather's payload is identical to every destination, so the
        // pod schedule degenerates to the direct broadcast-style exchange.
        Algorithm::Direct | Algorithm::Hierarchical => {
            for src in 0..n {
                let t0 = ready[src] + cfg.call_overhead;
                let bytes = inputs[src].len() as u64 * ELEM_BYTES;
                let local = t0 + d2d_copy_time(bytes, machine.spec(src).mem_bw);
                done[src] = done[src].max(local);
                for dst in 0..n {
                    if dst == src || bytes == 0 {
                        continue;
                    }
                    let iv = machine.send_throttled(
                        src,
                        dst,
                        bytes,
                        cfg.n_chunks(bytes),
                        t0,
                        cfg.protocol_efficiency,
                    );
                    done[dst] = done[dst].max(iv.end);
                    done[src] = done[src].max(iv.end);
                }
            }
        }
        Algorithm::Ring => {
            // n-1 steps; at each step every rank forwards the block it most
            // recently received (starting with its own) to its neighbor.
            let mut t: Vec<SimTime> = ready.iter().map(|&r| r + cfg.call_overhead).collect();
            let mut carried: Vec<u64> =
                inputs.iter().map(|b| b.len() as u64 * ELEM_BYTES).collect();
            done = t.clone();
            for _ in 1..n {
                let mut new_t = t.clone();
                let mut new_carried = carried.clone();
                for src in 0..n {
                    let next = (src + 1) % n;
                    let bytes = carried[src];
                    if bytes == 0 {
                        continue;
                    }
                    let iv = machine.send_throttled(
                        src,
                        next,
                        bytes,
                        cfg.n_chunks(bytes),
                        t[src],
                        cfg.protocol_efficiency,
                    );
                    new_t[next] = new_t[next].max(iv.end);
                    new_carried[next] = bytes;
                    done[src] = done[src].max(iv.end);
                    done[next] = done[next].max(iv.end);
                }
                t = new_t;
                carried = new_carried;
            }
        }
    }
    (outputs, WorkHandle::new(done))
}

/// Each device `j` ends with the elementwise **sum** of everyone's `j`-th
/// equal chunk. Inputs must share a length divisible by the device count.
pub fn reduce_scatter(
    machine: &mut Machine,
    cfg: &CollectiveConfig,
    inputs: &[Vec<f32>],
    ready: &[SimTime],
) -> (Vec<Vec<f32>>, WorkHandle) {
    let n = machine.n_gpus();
    assert_eq!(inputs.len(), n);
    let len = inputs[0].len();
    for b in inputs {
        assert_eq!(b.len(), len, "reduce_scatter inputs must match in length");
    }
    assert_eq!(len % n, 0, "input length {len} not divisible by {n}");
    let per = len / n;

    let outputs: Vec<Vec<f32>> = (0..n)
        .map(|dst| {
            let mut acc = vec![0.0f32; per];
            for input in inputs {
                for (a, &x) in acc.iter_mut().zip(&input[dst * per..(dst + 1) * per]) {
                    *a += x;
                }
            }
            acc
        })
        .collect();

    let chunk_bytes = per as u64 * ELEM_BYTES;
    let mut done = vec![SimTime::ZERO; n];
    for src in 0..n {
        let t0 = ready[src] + cfg.call_overhead;
        for dst in 0..n {
            if dst == src {
                done[src] =
                    done[src].max(t0 + d2d_copy_time(chunk_bytes, machine.spec(src).mem_bw));
                continue;
            }
            if chunk_bytes == 0 {
                done[dst] = done[dst].max(t0);
                continue;
            }
            let iv = machine.send_throttled(
                src,
                dst,
                chunk_bytes,
                cfg.n_chunks(chunk_bytes),
                t0,
                cfg.protocol_efficiency,
            );
            done[dst] = done[dst].max(iv.end);
            done[src] = done[src].max(iv.end);
        }
    }
    // The reduction itself: each device streams n chunks in and one out.
    for (dst, d) in done.iter_mut().enumerate() {
        let reduce_bytes = chunk_bytes * n as u64 + chunk_bytes;
        *d += Dur::from_secs_f64(reduce_bytes as f64 / machine.spec(dst).mem_bw);
    }
    (outputs, WorkHandle::new(done))
}

/// Timing-only `all_reduce` of `bytes` per device: simulates the wire
/// traffic of the reduce-scatter + all-gather decomposition without moving
/// functional data (each device sends `2·bytes·(n−1)/n` in total). Used by
/// the training pipeline's data-parallel MLP gradient synchronization.
pub fn all_reduce_timed(
    machine: &mut Machine,
    cfg: &CollectiveConfig,
    bytes: u64,
    ready: &[SimTime],
) -> WorkHandle {
    let n = machine.n_gpus();
    assert_eq!(ready.len(), n);
    if n == 1 {
        return WorkHandle::new(vec![ready[0] + cfg.call_overhead]);
    }
    let chunk = bytes.div_ceil(n as u64);
    let mut done = vec![SimTime::ZERO; n];
    // Phase 1: reduce-scatter (each rank receives n−1 chunks).
    for src in 0..n {
        let t0 = ready[src] + cfg.call_overhead;
        for dst in 0..n {
            if dst == src || chunk == 0 {
                continue;
            }
            let iv = machine.send_throttled(
                src,
                dst,
                chunk,
                cfg.n_chunks(chunk),
                t0,
                cfg.protocol_efficiency,
            );
            done[dst] = done[dst].max(iv.end);
            done[src] = done[src].max(iv.end);
        }
    }
    // Reduction cost on each owner.
    for (d, t) in done.iter_mut().enumerate() {
        *t += Dur::from_secs_f64((chunk * (n as u64 + 1)) as f64 / machine.spec(d).mem_bw);
    }
    // Phase 2: all-gather of the reduced chunks.
    let phase2_ready = done.clone();
    for src in 0..n {
        for dst in 0..n {
            if dst == src || chunk == 0 {
                continue;
            }
            let iv = machine.send_throttled(
                src,
                dst,
                chunk,
                cfg.n_chunks(chunk),
                phase2_ready[src],
                cfg.protocol_efficiency,
            );
            done[dst] = done[dst].max(iv.end);
            done[src] = done[src].max(iv.end);
        }
    }
    WorkHandle::new(done)
}

/// Every device ends with the elementwise sum of all inputs. Implemented as
/// `reduce_scatter` followed by `all_gather` (the bandwidth-optimal
/// decomposition).
pub fn all_reduce(
    machine: &mut Machine,
    cfg: &CollectiveConfig,
    inputs: &[Vec<f32>],
    ready: &[SimTime],
) -> (Vec<Vec<f32>>, WorkHandle) {
    let (scattered, w1) = reduce_scatter(machine, cfg, inputs, ready);
    let ready2: Vec<SimTime> = (0..machine.n_gpus()).map(|d| w1.done_at(d)).collect();
    let (gathered, w2) = all_gather(machine, cfg, &scattered, &ready2);
    (gathered, w2)
}

/// Every device ends with a copy of `root`'s input.
pub fn broadcast(
    machine: &mut Machine,
    cfg: &CollectiveConfig,
    inputs: &[Vec<f32>],
    root: usize,
    ready: &[SimTime],
) -> (Vec<Vec<f32>>, WorkHandle) {
    let n = machine.n_gpus();
    assert_eq!(inputs.len(), n);
    assert!(root < n, "broadcast root {root} out of range");
    let outputs = vec![inputs[root].clone(); n];
    let bytes = inputs[root].len() as u64 * ELEM_BYTES;
    let t0 = ready[root] + cfg.call_overhead;
    let mut done = vec![SimTime::ZERO; n];
    done[root] = t0;
    for dst in 0..n {
        if dst == root || bytes == 0 {
            continue;
        }
        let iv = machine.send_throttled(
            root,
            dst,
            bytes,
            cfg.n_chunks(bytes),
            t0,
            cfg.protocol_efficiency,
        );
        done[dst] = done[dst].max(iv.end);
        done[root] = done[root].max(iv.end);
    }
    // Receivers still can't be "done" before they called in.
    for (dst, d) in done.iter_mut().enumerate() {
        *d = (*d).max(ready[dst]);
    }
    (outputs, WorkHandle::new(done))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpusim::MachineConfig;

    fn ready(n: usize) -> Vec<SimTime> {
        vec![SimTime::ZERO; n]
    }

    #[test]
    fn all_gather_concatenates() {
        let mut m = Machine::new(MachineConfig::dgx_v100(3));
        let inputs = vec![vec![1.0], vec![2.0, 2.5], vec![3.0]];
        let (out, work) = all_gather(&mut m, &CollectiveConfig::default(), &inputs, &ready(3));
        for o in &out {
            assert_eq!(o, &vec![1.0, 2.0, 2.5, 3.0]);
        }
        assert!(work.all_done() > SimTime::ZERO);
    }

    #[test]
    fn all_gather_ring_agrees_functionally() {
        let mut md = Machine::new(MachineConfig::dgx_v100(4));
        let mut mr = Machine::new(MachineConfig::dgx_v100(4));
        let inputs: Vec<Vec<f32>> = (0..4).map(|i| vec![i as f32; 128]).collect();
        let (od, _) = all_gather(&mut md, &CollectiveConfig::default(), &inputs, &ready(4));
        let (or, _) = all_gather(
            &mut mr,
            &CollectiveConfig::default().with_algorithm(Algorithm::Ring),
            &inputs,
            &ready(4),
        );
        assert_eq!(od, or);
        // Ring and direct move the same total volume for all_gather.
        assert_eq!(
            md.traffic_stats().payload_bytes,
            mr.traffic_stats().payload_bytes
        );
    }

    #[test]
    fn reduce_scatter_sums_chunks() {
        let mut m = Machine::new(MachineConfig::dgx_v100(2));
        let inputs = vec![vec![1.0, 2.0, 3.0, 4.0], vec![10.0, 20.0, 30.0, 40.0]];
        let (out, _) = reduce_scatter(&mut m, &CollectiveConfig::default(), &inputs, &ready(2));
        assert_eq!(out[0], vec![11.0, 22.0]);
        assert_eq!(out[1], vec![33.0, 44.0]);
    }

    #[test]
    fn all_reduce_sums_everywhere() {
        let mut m = Machine::new(MachineConfig::dgx_v100(4));
        let inputs: Vec<Vec<f32>> = (0..4).map(|i| vec![(i + 1) as f32; 8]).collect();
        let (out, work) = all_reduce(&mut m, &CollectiveConfig::default(), &inputs, &ready(4));
        for o in &out {
            assert_eq!(o, &vec![10.0f32; 8]);
        }
        assert!(work.all_done() > SimTime::ZERO);
    }

    #[test]
    fn broadcast_copies_root() {
        let mut m = Machine::new(MachineConfig::dgx_v100(3));
        let inputs = vec![vec![0.0; 4], vec![7.0, 8.0, 9.0, 10.0], vec![0.0; 4]];
        let (out, work) = broadcast(&mut m, &CollectiveConfig::default(), &inputs, 1, &ready(3));
        for o in &out {
            assert_eq!(o, &inputs[1]);
        }
        // The root completes only once every receiver has its copy.
        assert_eq!(work.done_at(1), work.all_done());
        // Injection serializes the root's two sends: dst 2 finishes last.
        assert!(work.done_at(2) >= work.done_at(0));
    }

    #[test]
    fn all_reduce_is_slower_than_reduce_scatter_alone() {
        let inputs: Vec<Vec<f32>> = (0..4).map(|_| vec![1.0f32; 1 << 16]).collect();
        let mut m1 = Machine::new(MachineConfig::dgx_v100(4));
        let (_, w1) = reduce_scatter(&mut m1, &CollectiveConfig::default(), &inputs, &ready(4));
        let mut m2 = Machine::new(MachineConfig::dgx_v100(4));
        let (_, w2) = all_reduce(&mut m2, &CollectiveConfig::default(), &inputs, &ready(4));
        assert!(w2.all_done() > w1.all_done());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn broadcast_root_checked() {
        let mut m = Machine::new(MachineConfig::dgx_v100(2));
        let inputs = vec![vec![1.0], vec![1.0]];
        let _ = broadcast(&mut m, &CollectiveConfig::default(), &inputs, 5, &ready(2));
    }

    #[test]
    #[should_panic(expected = "must match in length")]
    fn reduce_scatter_length_checked() {
        let mut m = Machine::new(MachineConfig::dgx_v100(2));
        let inputs = vec![vec![1.0, 2.0], vec![1.0]];
        let _ = reduce_scatter(&mut m, &CollectiveConfig::default(), &inputs, &ready(2));
    }
}
