//! Async work handles.

use desim::SimTime;
use gpusim::{FabricError, Machine};

/// Completion record of an asynchronous collective — the analogue of the
/// request object returned by `all_to_all_single(..., async_op=True)`.
#[derive(Clone, Debug)]
pub struct WorkHandle {
    device_done: Vec<SimTime>,
    retries: u64,
}

impl WorkHandle {
    /// Build from per-device completion instants.
    pub fn new(device_done: Vec<SimTime>) -> Self {
        WorkHandle {
            device_done,
            retries: 0,
        }
    }

    /// Build from per-device completion instants plus the number of chunk
    /// retries the fallible collective paths performed.
    pub fn with_retries(device_done: Vec<SimTime>, retries: u64) -> Self {
        WorkHandle {
            device_done,
            retries,
        }
    }

    /// Chunk retries performed while completing this collective (0 on the
    /// infallible paths or a clean fabric).
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// The instant the collective completed on `dev` (device timeline).
    pub fn done_at(&self, dev: usize) -> SimTime {
        self.device_done[dev]
    }

    /// The instant the whole collective is finished everywhere.
    pub fn all_done(&self) -> SimTime {
        self.device_done
            .iter()
            .copied()
            .fold(SimTime::ZERO, SimTime::max)
    }

    /// Host-visible `wait()` on `dev`: blocks until the op is done on that
    /// device and pays the stream-sync overhead, as the baseline's
    /// `work.wait()` does.
    pub fn wait(&self, machine: &mut Machine, dev: usize, at: SimTime) -> SimTime {
        let done = self.device_done[dev].max(at);
        done + machine.spec(dev).stream_sync
    }

    /// [`WorkHandle::wait`] with a completion deadline: fails with
    /// [`FabricError::Timeout`] if the host would not observe completion by
    /// `deadline`, reporting when it actually completes.
    pub fn wait_deadline(
        &self,
        machine: &mut Machine,
        dev: usize,
        at: SimTime,
        deadline: SimTime,
    ) -> Result<SimTime, FabricError> {
        let t = self.wait(machine, dev, at);
        if t > deadline {
            return Err(FabricError::Timeout {
                deadline,
                completes_at: t,
            });
        }
        Ok(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpusim::MachineConfig;

    #[test]
    fn done_and_all_done() {
        let w = WorkHandle::new(vec![SimTime::from_us(5), SimTime::from_us(9)]);
        assert_eq!(w.done_at(0), SimTime::from_us(5));
        assert_eq!(w.done_at(1), SimTime::from_us(9));
        assert_eq!(w.all_done(), SimTime::from_us(9));
    }

    #[test]
    fn wait_adds_sync_overhead_and_respects_at() {
        let mut m = Machine::new(MachineConfig::dgx_v100(2));
        let w = WorkHandle::new(vec![SimTime::from_us(5), SimTime::from_us(9)]);
        let sync = m.spec(0).stream_sync;
        assert_eq!(w.wait(&mut m, 0, SimTime::ZERO), SimTime::from_us(5) + sync);
        // Caller arrives later than completion: wait starts from `at`.
        let late = SimTime::from_ms(1);
        assert_eq!(w.wait(&mut m, 0, late), late + sync);
    }
}
