//! `all_to_all_single` — the baseline's layout-conversion collective.

use desim::SimTime;
use gpusim::{FabricError, Machine};

use crate::{d2d_copy_time, Algorithm, CollectiveConfig, WorkHandle, ELEM_BYTES};

/// PyTorch-style `all_to_all_single` with equal splits: every device's input
/// is cut into `n` equal chunks, chunk `j` of device `i` lands at slot `i`
/// of device `j`'s output. Inputs must all have the same length, divisible
/// by the device count.
///
/// Returns the received buffers and a [`WorkHandle`] with per-device
/// completion times.
pub fn all_to_all_single(
    machine: &mut Machine,
    cfg: &CollectiveConfig,
    inputs: &[Vec<f32>],
    ready: &[SimTime],
) -> (Vec<Vec<f32>>, WorkHandle) {
    let n = machine.n_gpus();
    assert_eq!(inputs.len(), n, "one input buffer per device");
    let len = inputs[0].len();
    for (i, buf) in inputs.iter().enumerate() {
        assert_eq!(buf.len(), len, "input {i} length mismatch");
    }
    assert_eq!(
        len % n,
        0,
        "input length {len} not divisible by {n} devices"
    );
    let per = len / n;
    let counts: Vec<Vec<usize>> = vec![vec![per; n]; n];
    all_to_all_varied(machine, cfg, inputs, &counts, ready)
}

/// `all_to_all_single` with explicit per-pair element counts:
/// `send_counts[i][j]` elements travel from device `i` to device `j`,
/// taken from `inputs[i]` in destination order. Device `j`'s output is the
/// concatenation over sources `i` of those segments, in source order.
pub fn all_to_all_varied(
    machine: &mut Machine,
    cfg: &CollectiveConfig,
    inputs: &[Vec<f32>],
    send_counts: &[Vec<usize>],
    ready: &[SimTime],
) -> (Vec<Vec<f32>>, WorkHandle) {
    let n = machine.n_gpus();
    assert_eq!(inputs.len(), n, "one input buffer per device");
    assert_eq!(send_counts.len(), n, "one send-count row per device");
    assert_eq!(ready.len(), n, "one ready time per device");
    for (i, row) in send_counts.iter().enumerate() {
        assert_eq!(row.len(), n, "send_counts[{i}] must have {n} columns");
        let total: usize = row.iter().sum();
        assert_eq!(
            total,
            inputs[i].len(),
            "send_counts[{i}] must cover the whole input"
        );
    }

    // ---- Functional data movement (algorithm-independent). ----
    let outputs = shuffle_functional(inputs, send_counts);

    // ---- Timed wire traffic. ----
    let bytes: Vec<Vec<u64>> = send_counts
        .iter()
        .map(|row| row.iter().map(|&c| c as u64 * ELEM_BYTES).collect())
        .collect();
    let work = all_to_all_timed(machine, cfg, &bytes, ready);
    (outputs, work)
}

/// Timing-only `all_to_all`: simulate the wire traffic for a byte matrix
/// (`send_bytes[i][j]` bytes from device `i` to device `j`) without moving
/// any functional data. Used by paper-scale runs where materializing the
/// buffers would be wasteful.
pub fn all_to_all_timed(
    machine: &mut Machine,
    cfg: &CollectiveConfig,
    send_bytes: &[Vec<u64>],
    ready: &[SimTime],
) -> WorkHandle {
    let n = machine.n_gpus();
    assert_eq!(send_bytes.len(), n, "one byte row per device");
    assert_eq!(ready.len(), n, "one ready time per device");
    for (i, row) in send_bytes.iter().enumerate() {
        assert_eq!(row.len(), n, "send_bytes[{i}] must have {n} columns");
    }
    let work = match cfg.algorithm {
        Algorithm::Direct => timed_direct(machine, cfg, send_bytes, ready),
        Algorithm::Ring => timed_ring(machine, cfg, send_bytes, ready),
        Algorithm::Hierarchical => timed_hierarchical(machine, cfg, send_bytes, ready),
    };
    record_collective_span(machine, ready, &work);
    work
}

/// Telemetry: one collective call plus its phase span (earliest participant
/// ready → last delivery). No-op when the machine's registry is disabled.
fn record_collective_span(machine: &mut Machine, ready: &[SimTime], work: &WorkHandle) {
    let m = machine.metrics_mut();
    if !m.is_enabled() {
        return;
    }
    m.incr("collective_calls", 0, 0);
    let start = ready.iter().copied().fold(work.all_done(), SimTime::min);
    let end = work.all_done();
    m.span("collective_span_ns", 0, 0, start, end);
    if end > start {
        m.observe(
            "collective_span_us",
            0,
            0,
            telemetry::US_BOUNDS,
            end.since(start).as_ns() / 1_000,
        );
    }
}

/// Fault-aware [`all_to_all_timed`]: every chunk is retried under the
/// config's retry policy when its link is down or the chunk is dropped; the
/// collective fails with [`FabricError::RetryExhausted`] only once a chunk's
/// retry budget is spent. On a clean fabric (or with no fault plan
/// installed) timing is bit-identical to the infallible path.
pub fn try_all_to_all_timed(
    machine: &mut Machine,
    cfg: &CollectiveConfig,
    send_bytes: &[Vec<u64>],
    ready: &[SimTime],
) -> Result<WorkHandle, FabricError> {
    let n = machine.n_gpus();
    assert_eq!(send_bytes.len(), n, "one byte row per device");
    assert_eq!(ready.len(), n, "one ready time per device");
    for (i, row) in send_bytes.iter().enumerate() {
        assert_eq!(row.len(), n, "send_bytes[{i}] must have {n} columns");
    }
    let work = match cfg.algorithm {
        Algorithm::Direct => try_timed_direct(machine, cfg, send_bytes, ready),
        Algorithm::Ring => try_timed_ring(machine, cfg, send_bytes, ready),
        Algorithm::Hierarchical => try_timed_hierarchical(machine, cfg, send_bytes, ready),
    }?;
    record_collective_span(machine, ready, &work);
    Ok(work)
}

/// Fault-aware [`all_to_all_varied`]: same functional output, fallible
/// timing. Functional delivery is computed first — under retries every row
/// still arrives, only later; rows are abandoned only if the collective
/// errors, and then the caller decides what to degrade.
pub fn try_all_to_all_varied(
    machine: &mut Machine,
    cfg: &CollectiveConfig,
    inputs: &[Vec<f32>],
    send_counts: &[Vec<usize>],
    ready: &[SimTime],
) -> Result<(Vec<Vec<f32>>, WorkHandle), FabricError> {
    let n = machine.n_gpus();
    assert_eq!(inputs.len(), n, "one input buffer per device");
    assert_eq!(send_counts.len(), n, "one send-count row per device");
    for (i, row) in send_counts.iter().enumerate() {
        assert_eq!(row.len(), n, "send_counts[{i}] must have {n} columns");
        let total: usize = row.iter().sum();
        assert_eq!(
            total,
            inputs[i].len(),
            "send_counts[{i}] must cover the whole input"
        );
    }
    let bytes: Vec<Vec<u64>> = send_counts
        .iter()
        .map(|row| row.iter().map(|&c| c as u64 * ELEM_BYTES).collect())
        .collect();
    let work = try_all_to_all_timed(machine, cfg, &bytes, ready)?;
    let outputs = shuffle_functional(inputs, send_counts);
    Ok((outputs, work))
}

/// The algorithm-independent functional data movement of an all-to-all.
fn shuffle_functional(inputs: &[Vec<f32>], send_counts: &[Vec<usize>]) -> Vec<Vec<f32>> {
    let n = inputs.len();
    let offsets: Vec<Vec<usize>> = send_counts
        .iter()
        .map(|row| {
            let mut off = 0;
            row.iter()
                .map(|&c| {
                    let o = off;
                    off += c;
                    o
                })
                .collect()
        })
        .collect();
    (0..n)
        .map(|dst| {
            let mut out = Vec::with_capacity((0..n).map(|s| send_counts[s][dst]).sum());
            for src in 0..n {
                let o = offsets[src][dst];
                out.extend_from_slice(&inputs[src][o..o + send_counts[src][dst]]);
            }
            out
        })
        .collect()
}

/// Pairwise schedule: each device pushes its per-destination segment
/// straight to the peer, chunked; the self segment is a device-local copy.
fn timed_direct(
    machine: &mut Machine,
    cfg: &CollectiveConfig,
    send_bytes: &[Vec<u64>],
    ready: &[SimTime],
) -> WorkHandle {
    let n = machine.n_gpus();
    let mut done = vec![SimTime::ZERO; n];
    for src in 0..n {
        let t0 = ready[src] + cfg.call_overhead;
        for dst in 0..n {
            let bytes = send_bytes[src][dst];
            if dst == src {
                let local_done = t0 + d2d_copy_time(bytes, machine.spec(src).mem_bw);
                done[src] = done[src].max(local_done);
                continue;
            }
            if bytes == 0 {
                done[dst] = done[dst].max(t0);
                continue;
            }
            // Chunked pipeline: each chunk is one message on the wire.
            let mut remaining = bytes;
            let mut last_end = t0;
            while remaining > 0 {
                let this = remaining.min(cfg.chunk_bytes);
                let iv = machine.send_throttled(src, dst, this, 1, t0, cfg.protocol_efficiency);
                last_end = last_end.max(iv.end);
                remaining -= this;
            }
            done[dst] = done[dst].max(last_end);
            done[src] = done[src].max(last_end);
        }
    }
    WorkHandle::new(done)
}

/// Fault-aware pairwise schedule: [`timed_direct`] with each chunk retried
/// under `cfg.retry`.
fn try_timed_direct(
    machine: &mut Machine,
    cfg: &CollectiveConfig,
    send_bytes: &[Vec<u64>],
    ready: &[SimTime],
) -> Result<WorkHandle, FabricError> {
    let n = machine.n_gpus();
    let mut done = vec![SimTime::ZERO; n];
    let mut retries = 0u64;
    for src in 0..n {
        let t0 = ready[src] + cfg.call_overhead;
        for dst in 0..n {
            let bytes = send_bytes[src][dst];
            if dst == src {
                let local_done = t0 + d2d_copy_time(bytes, machine.spec(src).mem_bw);
                done[src] = done[src].max(local_done);
                continue;
            }
            if bytes == 0 {
                done[dst] = done[dst].max(t0);
                continue;
            }
            let mut remaining = bytes;
            let mut last_end = t0;
            while remaining > 0 {
                let this = remaining.min(cfg.chunk_bytes);
                let (iv, attempts) = machine.try_send_retry(
                    src,
                    dst,
                    this,
                    1,
                    t0,
                    cfg.protocol_efficiency,
                    cfg.retry,
                )?;
                retries += u64::from(attempts - 1);
                last_end = last_end.max(iv.end);
                remaining -= this;
            }
            done[dst] = done[dst].max(last_end);
            done[src] = done[src].max(last_end);
        }
    }
    Ok(WorkHandle::with_retries(done, retries))
}

/// Pipeline-chunked transfer of `bytes` from `src` to `dst`, every chunk
/// ready at `at`; returns the last delivery time.
fn send_chunked(
    machine: &mut Machine,
    cfg: &CollectiveConfig,
    src: usize,
    dst: usize,
    bytes: u64,
    at: SimTime,
) -> SimTime {
    let mut remaining = bytes;
    let mut last = at;
    while remaining > 0 {
        let this = remaining.min(cfg.chunk_bytes);
        let iv = machine.send_throttled(src, dst, this, 1, at, cfg.protocol_efficiency);
        last = last.max(iv.end);
        remaining -= this;
    }
    last
}

/// Fault-aware [`send_chunked`]: each chunk retried under `cfg.retry`;
/// returns the last delivery time and the retries spent.
fn try_send_chunked(
    machine: &mut Machine,
    cfg: &CollectiveConfig,
    src: usize,
    dst: usize,
    bytes: u64,
    at: SimTime,
) -> Result<(SimTime, u64), FabricError> {
    let mut remaining = bytes;
    let mut last = at;
    let mut retries = 0u64;
    while remaining > 0 {
        let this = remaining.min(cfg.chunk_bytes);
        let (iv, attempts) =
            machine.try_send_retry(src, dst, this, 1, at, cfg.protocol_efficiency, cfg.retry)?;
        retries += u64::from(attempts - 1);
        last = last.max(iv.end);
        remaining -= this;
    }
    Ok((last, retries))
}

/// Two-level pod schedule. Intra-node pairs follow the direct pairwise
/// schedule over the crossbar. Cross-node traffic is staged in three hops:
/// each source forwards its per-destination-node segment to its own node's
/// gateway (intra link, or a local staging copy when the source *is* the
/// gateway), the gateway ships **one** aggregate chunked transfer per
/// ordered node pair across the slow tier — paying the inter-node
/// per-message cost once per node pair instead of once per GPU pair — and
/// the destination gateway scatters each source-node's bundle to its final
/// devices over the crossbar. On a single-node topology this is exactly
/// [`timed_direct`], bit for bit.
fn timed_hierarchical(
    machine: &mut Machine,
    cfg: &CollectiveConfig,
    send_bytes: &[Vec<u64>],
    ready: &[SimTime],
) -> WorkHandle {
    let topo = machine.topology().clone();
    if topo.nodes() == 1 {
        return timed_direct(machine, cfg, send_bytes, ready);
    }
    let n = machine.n_gpus();
    let t0: Vec<SimTime> = ready.iter().map(|&r| r + cfg.call_overhead).collect();
    let mut done = vec![SimTime::ZERO; n];

    // Intra-node traffic and self-copies: the direct schedule within a node.
    for src in 0..n {
        for dst in 0..n {
            if !topo.same_node(src, dst) {
                continue;
            }
            let bytes = send_bytes[src][dst];
            if dst == src {
                let local = t0[src] + d2d_copy_time(bytes, machine.spec(src).mem_bw);
                done[src] = done[src].max(local);
                continue;
            }
            if bytes == 0 {
                done[dst] = done[dst].max(t0[src]);
                continue;
            }
            let last = send_chunked(machine, cfg, src, dst, bytes, t0[src]);
            done[dst] = done[dst].max(last);
            done[src] = done[src].max(last);
        }
    }

    // Cross-node traffic: gather → one aggregate inter-node transfer per
    // ordered node pair → scatter. The hops are issued as *global phases*
    // (every pair's gather, then every pair's inter-node transfer, then
    // every pair's scatter): the fabric books resources in call order with
    // a moving horizon, so interleaving the phases per node pair would
    // ratchet a gateway's injection horizon with one pair's late scatter
    // before the reverse pair's gather was even issued, serializing
    // traffic that physically overlaps.
    let mut pairs = gather_phase(machine, cfg, send_bytes, &t0, &mut done, send_chunked);
    // Inter-node transfers, earliest-ready first — the order a real NIC
    // would drain its send queue.
    pairs.sort_by_key(|p| (p.agg_ready, p.gw_s, p.gw_d));
    for p in &mut pairs {
        // Blame: the aggregate transfer is gated by the gather hop landing
        // on the source gateway, not by the gateway's own kernel.
        if let Some(b) = machine.blame_mut() {
            let inbound = b.last_inbound(p.gw_s as u32);
            if inbound.is_some() {
                b.set_device_cause(p.gw_s as u32, inbound);
            }
        }
        let arrive = send_chunked(machine, cfg, p.gw_s, p.gw_d, p.total, p.agg_ready);
        done[p.gw_s] = done[p.gw_s].max(arrive);
        p.arrive = arrive;
    }
    // Scatters, earliest-arrival first for the same reason.
    pairs.sort_by_key(|p| (p.arrive, p.gw_s, p.gw_d));
    for p in &pairs {
        // Blame: scatters are gated by the aggregate landing on the
        // destination gateway.
        if let Some(b) = machine.blame_mut() {
            let inbound = b.last_inbound(p.gw_d as u32);
            if inbound.is_some() {
                b.set_device_cause(p.gw_d as u32, inbound);
            }
        }
        for &d in &p.dst_members {
            let bytes = p.per_dst[d];
            if bytes == 0 {
                continue;
            }
            let end = if d == p.gw_d {
                p.arrive + d2d_copy_time(bytes, machine.spec(d).mem_bw)
            } else {
                send_chunked(machine, cfg, p.gw_d, d, bytes, p.arrive)
            };
            done[p.gw_d] = done[p.gw_d].max(end);
            done[d] = done[d].max(end);
        }
    }
    WorkHandle::new(done)
}

/// The staged state of one ordered node pair between the hierarchical
/// schedule's phases.
struct PairPlan {
    gw_s: usize,
    gw_d: usize,
    dst_members: Vec<usize>,
    /// Bytes bound for each final destination (indexed by global GPU id).
    per_dst: Vec<u64>,
    /// Aggregate bytes crossing the inter-node tier for this pair.
    total: u64,
    /// When the source gateway holds the whole bundle.
    agg_ready: SimTime,
    /// When the destination gateway holds it (set by the inter phase).
    arrive: SimTime,
}

/// Phase one of the hierarchical schedule: every source forwards its
/// cross-node segments to its node's gateway. Returns one [`PairPlan`] per
/// ordered node pair with traffic; `send` abstracts over the plain and
/// fault-aware chunked senders.
fn gather_phase(
    machine: &mut Machine,
    cfg: &CollectiveConfig,
    send_bytes: &[Vec<u64>],
    t0: &[SimTime],
    done: &mut [SimTime],
    mut send: impl FnMut(&mut Machine, &CollectiveConfig, usize, usize, u64, SimTime) -> SimTime,
) -> Vec<PairPlan> {
    let topo = machine.topology().clone();
    let n = machine.n_gpus();
    let nodes = topo.nodes();
    let mut pairs = Vec::new();
    for sn in 0..nodes {
        let src_members: Vec<usize> = topo.node_members(sn).collect();
        let gw_s = src_members[0];
        for dn in 0..nodes {
            if dn == sn {
                continue;
            }
            let dst_members: Vec<usize> = topo.node_members(dn).collect();
            let gw_d = dst_members[0];
            let mut per_dst = vec![0u64; n];
            let mut total = 0u64;
            let mut agg_ready = SimTime::ZERO;
            for &src in &src_members {
                let bytes: u64 = dst_members.iter().map(|&d| send_bytes[src][d]).sum();
                for &d in &dst_members {
                    per_dst[d] += send_bytes[src][d];
                    // Zero-byte floor, matching the direct schedule.
                    done[d] = done[d].max(t0[src]);
                }
                if bytes == 0 {
                    continue;
                }
                total += bytes;
                let arrive = if src == gw_s {
                    t0[src] + d2d_copy_time(bytes, machine.spec(src).mem_bw)
                } else {
                    send(machine, cfg, src, gw_s, bytes, t0[src])
                };
                done[src] = done[src].max(arrive);
                agg_ready = agg_ready.max(arrive);
            }
            if total == 0 {
                continue;
            }
            pairs.push(PairPlan {
                gw_s,
                gw_d,
                dst_members,
                per_dst,
                total,
                agg_ready,
                arrive: SimTime::ZERO,
            });
        }
    }
    pairs
}

/// Fault-aware [`timed_hierarchical`]: every hop's chunks retried under
/// `cfg.retry`. Delegates to [`try_timed_direct`] on single-node topologies.
fn try_timed_hierarchical(
    machine: &mut Machine,
    cfg: &CollectiveConfig,
    send_bytes: &[Vec<u64>],
    ready: &[SimTime],
) -> Result<WorkHandle, FabricError> {
    let topo = machine.topology().clone();
    if topo.nodes() == 1 {
        return try_timed_direct(machine, cfg, send_bytes, ready);
    }
    let n = machine.n_gpus();
    let t0: Vec<SimTime> = ready.iter().map(|&r| r + cfg.call_overhead).collect();
    let mut done = vec![SimTime::ZERO; n];
    let mut retries = 0u64;

    for src in 0..n {
        for dst in 0..n {
            if !topo.same_node(src, dst) {
                continue;
            }
            let bytes = send_bytes[src][dst];
            if dst == src {
                let local = t0[src] + d2d_copy_time(bytes, machine.spec(src).mem_bw);
                done[src] = done[src].max(local);
                continue;
            }
            if bytes == 0 {
                done[dst] = done[dst].max(t0[src]);
                continue;
            }
            let (last, r) = try_send_chunked(machine, cfg, src, dst, bytes, t0[src])?;
            retries += r;
            done[dst] = done[dst].max(last);
            done[src] = done[src].max(last);
        }
    }

    // Same three global phases as [`timed_hierarchical`] (see the booking
    // rationale there); the fault-aware sender records retries and parks
    // the first fabric error for propagation after each phase.
    let mut err: Option<FabricError> = None;
    let mut pairs = gather_phase(
        machine,
        cfg,
        send_bytes,
        &t0,
        &mut done,
        |m, c, s, d, b, at| match try_send_chunked(m, c, s, d, b, at) {
            Ok((last, r)) => {
                retries += r;
                last
            }
            Err(e) => {
                err.get_or_insert(e);
                at
            }
        },
    );
    if let Some(e) = err {
        return Err(e);
    }
    pairs.sort_by_key(|p| (p.agg_ready, p.gw_s, p.gw_d));
    for p in &mut pairs {
        let (arrive, r) = try_send_chunked(machine, cfg, p.gw_s, p.gw_d, p.total, p.agg_ready)?;
        retries += r;
        done[p.gw_s] = done[p.gw_s].max(arrive);
        p.arrive = arrive;
    }
    pairs.sort_by_key(|p| (p.arrive, p.gw_s, p.gw_d));
    for p in &pairs {
        for &d in &p.dst_members {
            let bytes = p.per_dst[d];
            if bytes == 0 {
                continue;
            }
            let end = if d == p.gw_d {
                p.arrive + d2d_copy_time(bytes, machine.spec(d).mem_bw)
            } else {
                let (last, r) = try_send_chunked(machine, cfg, p.gw_d, d, bytes, p.arrive)?;
                retries += r;
                last
            };
            done[p.gw_d] = done[p.gw_d].max(end);
            done[d] = done[d].max(end);
        }
    }
    Ok(WorkHandle::with_retries(done, retries))
}

/// Fault-aware ring schedule: [`timed_ring`] with each hop retried under
/// `cfg.retry`.
fn try_timed_ring(
    machine: &mut Machine,
    cfg: &CollectiveConfig,
    send_bytes: &[Vec<u64>],
    ready: &[SimTime],
) -> Result<WorkHandle, FabricError> {
    let n = machine.n_gpus();
    if n == 1 {
        return Ok(WorkHandle::new(vec![ready[0] + cfg.call_overhead]));
    }
    let mut held: Vec<Vec<(usize, u64)>> = (0..n)
        .map(|src| {
            (0..n)
                .filter(|&d| d != src)
                .map(|d| (d, send_bytes[src][d]))
                .filter(|&(_, b)| b > 0)
                .collect()
        })
        .collect();
    let mut t: Vec<SimTime> = ready.iter().map(|&r| r + cfg.call_overhead).collect();
    let mut done = t.clone();
    let mut retries = 0u64;
    for src in 0..n {
        let bytes = send_bytes[src][src];
        let local = t[src] + d2d_copy_time(bytes, machine.spec(src).mem_bw);
        done[src] = done[src].max(local);
    }
    for _step in 1..n {
        let mut arriving: Vec<Vec<(usize, u64)>> = vec![Vec::new(); n];
        let mut arrive_time = vec![SimTime::ZERO; n];
        for src in 0..n {
            let next = (src + 1) % n;
            let parcels = std::mem::take(&mut held[src]);
            if parcels.is_empty() {
                continue;
            }
            let bytes: u64 = parcels.iter().map(|&(_, b)| b).sum();
            let (iv, attempts) = machine.try_send_retry(
                src,
                next,
                bytes,
                cfg.n_chunks(bytes),
                t[src],
                cfg.protocol_efficiency,
                cfg.retry,
            )?;
            retries += u64::from(attempts - 1);
            done[src] = done[src].max(iv.end);
            arrive_time[next] = arrive_time[next].max(iv.end);
            arriving[next].extend(parcels);
        }
        for rank in 0..n {
            let mut keep = Vec::new();
            for (dst, bytes) in arriving[rank].drain(..) {
                if dst == rank {
                    done[rank] = done[rank].max(arrive_time[rank]);
                } else {
                    keep.push((dst, bytes));
                }
            }
            held[rank] = keep;
            t[rank] = t[rank].max(arrive_time[rank]);
        }
    }
    Ok(WorkHandle::with_retries(done, retries))
}

/// Ring schedule: `n − 1` neighbor steps; parcels hop until they reach their
/// destination. Total wire volume exceeds the direct schedule (multi-hop),
/// which is why NCCL prefers peer-to-peer on a crossbar.
fn timed_ring(
    machine: &mut Machine,
    cfg: &CollectiveConfig,
    send_bytes: &[Vec<u64>],
    ready: &[SimTime],
) -> WorkHandle {
    let n = machine.n_gpus();
    if n == 1 {
        return WorkHandle::new(vec![ready[0] + cfg.call_overhead]);
    }
    // Parcels held at each rank: (dst, bytes).
    let mut held: Vec<Vec<(usize, u64)>> = (0..n)
        .map(|src| {
            (0..n)
                .filter(|&d| d != src)
                .map(|d| (d, send_bytes[src][d]))
                .filter(|&(_, b)| b > 0)
                .collect()
        })
        .collect();
    let mut t: Vec<SimTime> = ready.iter().map(|&r| r + cfg.call_overhead).collect();
    let mut done = t.clone();
    // Local self-copy happens immediately.
    for src in 0..n {
        let bytes = send_bytes[src][src];
        let local = t[src] + d2d_copy_time(bytes, machine.spec(src).mem_bw);
        done[src] = done[src].max(local);
    }
    for _step in 1..n {
        let mut arriving: Vec<Vec<(usize, u64)>> = vec![Vec::new(); n];
        let mut arrive_time = vec![SimTime::ZERO; n];
        for src in 0..n {
            let next = (src + 1) % n;
            let parcels = std::mem::take(&mut held[src]);
            if parcels.is_empty() {
                continue;
            }
            let bytes: u64 = parcels.iter().map(|&(_, b)| b).sum();
            let iv = machine.send_throttled(
                src,
                next,
                bytes,
                cfg.n_chunks(bytes),
                t[src],
                cfg.protocol_efficiency,
            );
            done[src] = done[src].max(iv.end);
            arrive_time[next] = arrive_time[next].max(iv.end);
            arriving[next].extend(parcels);
        }
        for rank in 0..n {
            let mut keep = Vec::new();
            for (dst, bytes) in arriving[rank].drain(..) {
                if dst == rank {
                    done[rank] = done[rank].max(arrive_time[rank]);
                } else {
                    keep.push((dst, bytes));
                }
            }
            held[rank] = keep;
            t[rank] = t[rank].max(arrive_time[rank]);
        }
    }
    WorkHandle::new(done)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpusim::MachineConfig;

    fn ready(n: usize) -> Vec<SimTime> {
        vec![SimTime::ZERO; n]
    }

    /// The reference semantics: output[j] = concat_i input[i].chunk(j).
    fn reference_equal(inputs: &[Vec<f32>]) -> Vec<Vec<f32>> {
        let n = inputs.len();
        let per = inputs[0].len() / n;
        (0..n)
            .map(|dst| {
                let mut out = Vec::new();
                for input in inputs {
                    out.extend_from_slice(&input[dst * per..(dst + 1) * per]);
                }
                out
            })
            .collect()
    }

    #[test]
    fn equal_split_matches_reference() {
        let n = 4;
        let mut m = Machine::new(MachineConfig::dgx_v100(n));
        let inputs: Vec<Vec<f32>> = (0..n)
            .map(|i| (0..8).map(|k| (i * 100 + k) as f32).collect())
            .collect();
        let (out, work) =
            all_to_all_single(&mut m, &CollectiveConfig::default(), &inputs, &ready(n));
        assert_eq!(out, reference_equal(&inputs));
        assert!(work.all_done() > SimTime::ZERO);
    }

    #[test]
    fn two_gpu_swap() {
        let mut m = Machine::new(MachineConfig::dgx_v100(2));
        let inputs = vec![vec![1.0, 2.0, 3.0, 4.0], vec![5.0, 6.0, 7.0, 8.0]];
        let (out, _) = all_to_all_single(&mut m, &CollectiveConfig::default(), &inputs, &ready(2));
        assert_eq!(out[0], vec![1.0, 2.0, 5.0, 6.0]);
        assert_eq!(out[1], vec![3.0, 4.0, 7.0, 8.0]);
    }

    #[test]
    fn varied_splits() {
        let mut m = Machine::new(MachineConfig::dgx_v100(2));
        // Device 0 sends 1 element to itself, 3 to device 1.
        // Device 1 sends 2 to device 0, 0 to itself.
        let inputs = vec![vec![10.0, 20.0, 30.0, 40.0], vec![50.0, 60.0]];
        let counts = vec![vec![1, 3], vec![2, 0]];
        let (out, _) = all_to_all_varied(
            &mut m,
            &CollectiveConfig::default(),
            &inputs,
            &counts,
            &ready(2),
        );
        assert_eq!(out[0], vec![10.0, 50.0, 60.0]);
        assert_eq!(out[1], vec![20.0, 30.0, 40.0]);
    }

    #[test]
    fn ring_moves_more_bytes_than_direct() {
        let n = 4;
        let inputs: Vec<Vec<f32>> = (0..n).map(|_| vec![1.0f32; 4096]).collect();
        let mut md = Machine::new(MachineConfig::dgx_v100(n));
        let (out_d, _) =
            all_to_all_single(&mut md, &CollectiveConfig::default(), &inputs, &ready(n));
        let mut mr = Machine::new(MachineConfig::dgx_v100(n));
        let (out_r, _) = all_to_all_single(
            &mut mr,
            &CollectiveConfig::default().with_algorithm(Algorithm::Ring),
            &inputs,
            &ready(n),
        );
        assert_eq!(out_d, out_r, "algorithms must agree functionally");
        assert!(
            mr.traffic_stats().payload_bytes > md.traffic_stats().payload_bytes,
            "ring multi-hop must move more total bytes"
        );
    }

    #[test]
    fn single_device_is_local_copy_only() {
        let mut m = Machine::new(MachineConfig::dgx_v100(1));
        let inputs = vec![vec![1.0, 2.0]];
        for alg in [Algorithm::Direct, Algorithm::Ring] {
            let (out, work) = all_to_all_single(
                &mut m,
                &CollectiveConfig::default().with_algorithm(alg),
                &inputs,
                &ready(1),
            );
            assert_eq!(out[0], inputs[0]);
            assert!(work.all_done() >= SimTime::ZERO + CollectiveConfig::default().call_overhead);
        }
        assert_eq!(m.traffic_stats().messages, 0, "no wire traffic on 1 GPU");
    }

    #[test]
    fn completion_respects_ready_times() {
        let mut m = Machine::new(MachineConfig::dgx_v100(2));
        let inputs = vec![vec![0.0f32; 1024], vec![0.0f32; 1024]];
        let late = SimTime::from_ms(5);
        let (_, work) = all_to_all_single(
            &mut m,
            &CollectiveConfig::default(),
            &inputs,
            &[late, SimTime::ZERO],
        );
        // Device 1 can't have the data destined from device 0 before `late`.
        assert!(work.done_at(1) > late);
    }

    #[test]
    fn chunking_splits_messages() {
        let mut m = Machine::new(MachineConfig::dgx_v100(2));
        let inputs = vec![vec![0.0f32; 2048], vec![0.0f32; 2048]];
        let cfg = CollectiveConfig::default().with_chunk_bytes(1024);
        let (_, _) = all_to_all_single(&mut m, &cfg, &inputs, &ready(2));
        // Each device sends 1024 elements = 4096 bytes = 4 chunks.
        assert_eq!(m.traffic_stats().messages, 8);
    }

    #[test]
    fn try_timed_without_faults_matches_timed() {
        let n = 4;
        let bytes: Vec<Vec<u64>> = (0..n).map(|_| vec![1 << 16; n]).collect();
        for alg in [Algorithm::Direct, Algorithm::Ring] {
            let cfg = CollectiveConfig::default().with_algorithm(alg);
            let mut m1 = Machine::new(MachineConfig::dgx_v100(n));
            let a = all_to_all_timed(&mut m1, &cfg, &bytes, &ready(n));
            let mut m2 = Machine::new(MachineConfig::dgx_v100(n));
            let b = try_all_to_all_timed(&mut m2, &cfg, &bytes, &ready(n)).expect("clean");
            for dev in 0..n {
                assert_eq!(a.done_at(dev), b.done_at(dev), "{alg:?} dev {dev}");
            }
            assert_eq!(b.retries(), 0);
            assert_eq!(m1.traffic_stats(), m2.traffic_stats());
        }
    }

    #[test]
    fn try_varied_matches_functional_reference() {
        let mut m = Machine::new(MachineConfig::dgx_v100(2));
        let inputs = vec![vec![10.0, 20.0, 30.0, 40.0], vec![50.0, 60.0]];
        let counts = vec![vec![1, 3], vec![2, 0]];
        let (out, work) = try_all_to_all_varied(
            &mut m,
            &CollectiveConfig::default(),
            &inputs,
            &counts,
            &ready(2),
        )
        .expect("clean fabric");
        assert_eq!(out[0], vec![10.0, 50.0, 60.0]);
        assert_eq!(out[1], vec![20.0, 30.0, 40.0]);
        assert!(work.all_done() > SimTime::ZERO);
    }

    #[test]
    fn try_timed_survives_chaos() {
        use gpusim::{FaultPlan, FaultSpec};
        let n = 4;
        let bytes: Vec<Vec<u64>> = (0..n).map(|_| vec![1 << 18; n]).collect();
        // A moderately hostile fabric: the collective must either complete
        // (possibly with retries) or fail with a typed error — never panic.
        let mut completions = 0;
        let mut total_retries = 0;
        for seed in 0..20u64 {
            let mut m = Machine::new(MachineConfig::dgx_v100(n));
            m.install_faults(FaultPlan::generate(seed, n, FaultSpec::chaos(0.8)));
            match try_all_to_all_timed(&mut m, &CollectiveConfig::default(), &bytes, &ready(n)) {
                Ok(w) => {
                    completions += 1;
                    total_retries += w.retries();
                }
                Err(e) => assert!(matches!(e, FabricError::RetryExhausted { .. })),
            }
        }
        assert!(completions > 0, "some seeds must complete");
        assert!(
            total_retries > 0,
            "chaos(0.8) must force at least one retry"
        );
    }

    #[test]
    fn hierarchical_matches_direct_bit_for_bit_at_every_single_node_width() {
        // The single-node delegation must be exact at every crossbar width,
        // including degenerate 1-GPU machines and non-uniform matrices.
        for n in [1usize, 2, 4, 8] {
            let bytes: Vec<Vec<u64>> = (0..n)
                .map(|s| {
                    (0..n)
                        .map(|d| ((s * 7 + d * 13) % 9) as u64 * 50_000)
                        .collect()
                })
                .collect();
            let mut md = Machine::new(MachineConfig::dgx_v100(n));
            let d = all_to_all_timed(&mut md, &CollectiveConfig::default(), &bytes, &ready(n));
            let mut mh = Machine::new(MachineConfig::dgx_v100(n));
            let h = all_to_all_timed(
                &mut mh,
                &CollectiveConfig::default().with_algorithm(Algorithm::Hierarchical),
                &bytes,
                &ready(n),
            );
            for dev in 0..n {
                assert_eq!(d.done_at(dev), h.done_at(dev), "width {n} dev {dev}");
            }
            assert_eq!(md.traffic_stats(), mh.traffic_stats(), "width {n}");
        }
    }

    #[test]
    fn hierarchical_on_single_node_is_exactly_direct() {
        let n = 4;
        let bytes: Vec<Vec<u64>> = (0..n).map(|_| vec![100_000; n]).collect();
        let mut md = Machine::new(MachineConfig::dgx_v100(n));
        let d = all_to_all_timed(&mut md, &CollectiveConfig::default(), &bytes, &ready(n));
        let mut mh = Machine::new(MachineConfig::dgx_v100(n));
        let h = all_to_all_timed(
            &mut mh,
            &CollectiveConfig::default().with_algorithm(Algorithm::Hierarchical),
            &bytes,
            &ready(n),
        );
        for dev in 0..n {
            assert_eq!(d.done_at(dev), h.done_at(dev), "dev {dev}");
        }
        assert_eq!(md.traffic_stats(), mh.traffic_stats());
    }

    #[test]
    fn hierarchical_functionally_matches_direct_on_pods() {
        let mut md = Machine::new(MachineConfig::pod_v100(2, 2));
        let mut mh = Machine::new(MachineConfig::pod_v100(2, 2));
        let inputs: Vec<Vec<f32>> = (0..4)
            .map(|i| (0..8).map(|k| (i * 100 + k) as f32).collect())
            .collect();
        let (out_d, _) =
            all_to_all_single(&mut md, &CollectiveConfig::default(), &inputs, &ready(4));
        let (out_h, _) = all_to_all_single(
            &mut mh,
            &CollectiveConfig::default().with_algorithm(Algorithm::Hierarchical),
            &inputs,
            &ready(4),
        );
        assert_eq!(out_d, out_h, "schedules must agree functionally");
    }

    #[test]
    fn hierarchical_sends_one_inter_node_transfer_per_node_pair() {
        // 2 nodes x 2 GPUs, small per-pair segments: the direct schedule
        // crosses the slow tier once per cross-node GPU pair (8 messages);
        // the hierarchical one crosses once per ordered node pair (2).
        let bytes: Vec<Vec<u64>> = (0..4).map(|_| vec![1024; 4]).collect();
        let count_inter = |m: &Machine| {
            let t = m.metrics().counter("fabric_tier_messages", 1, 0);
            t
        };
        let mut md = Machine::new(MachineConfig::pod_v100(2, 2));
        md.enable_telemetry();
        let _ = all_to_all_timed(&mut md, &CollectiveConfig::default(), &bytes, &ready(4));
        let mut mh = Machine::new(MachineConfig::pod_v100(2, 2));
        mh.enable_telemetry();
        let h = all_to_all_timed(
            &mut mh,
            &CollectiveConfig::default().with_algorithm(Algorithm::Hierarchical),
            &bytes,
            &ready(4),
        );
        assert_eq!(count_inter(&md), 8);
        assert_eq!(count_inter(&mh), 2);
        assert!(h.all_done() > SimTime::ZERO);
        // Same payload crosses the slow tier either way.
        assert_eq!(
            md.metrics().counter("fabric_tier_payload_bytes", 1, 0),
            mh.metrics().counter("fabric_tier_payload_bytes", 1, 0),
        );
    }

    #[test]
    fn try_hierarchical_without_faults_matches_timed() {
        let bytes: Vec<Vec<u64>> = (0..8).map(|_| vec![1 << 14; 8]).collect();
        let cfg = CollectiveConfig::default().with_algorithm(Algorithm::Hierarchical);
        let mut m1 = Machine::new(MachineConfig::pod_v100(2, 4));
        let a = all_to_all_timed(&mut m1, &cfg, &bytes, &ready(8));
        let mut m2 = Machine::new(MachineConfig::pod_v100(2, 4));
        let b = try_all_to_all_timed(&mut m2, &cfg, &bytes, &ready(8)).expect("clean");
        for dev in 0..8 {
            assert_eq!(a.done_at(dev), b.done_at(dev), "dev {dev}");
        }
        assert_eq!(b.retries(), 0);
        assert_eq!(m1.traffic_stats(), m2.traffic_stats());
    }

    #[test]
    fn try_hierarchical_survives_tiered_chaos() {
        use gpusim::{FaultPlan, FaultSpec};
        let bytes: Vec<Vec<u64>> = (0..4).map(|_| vec![1 << 18; 4]).collect();
        let cfg = CollectiveConfig::default().with_algorithm(Algorithm::Hierarchical);
        let mut completions = 0;
        for seed in 0..20u64 {
            let mut m = Machine::new(MachineConfig::pod_v100(2, 2));
            let topo = m.topology().clone();
            m.install_faults(FaultPlan::generate_tiered(
                seed,
                &topo,
                FaultSpec::none(),
                FaultSpec::chaos(0.8),
            ));
            match try_all_to_all_timed(&mut m, &cfg, &bytes, &ready(4)) {
                Ok(_) => completions += 1,
                Err(e) => assert!(matches!(e, FabricError::RetryExhausted { .. })),
            }
        }
        assert!(completions > 0, "some seeds must complete");
    }

    #[test]
    fn wait_deadline_reports_timeout() {
        let mut m = Machine::new(MachineConfig::dgx_v100(2));
        let inputs = vec![vec![0.0f32; 1 << 16], vec![0.0f32; 1 << 16]];
        let (_, work) = all_to_all_single(&mut m, &CollectiveConfig::default(), &inputs, &ready(2));
        let fine = work.wait(&mut m, 0, SimTime::ZERO);
        assert_eq!(
            work.wait_deadline(&mut m, 0, SimTime::ZERO, fine)
                .expect("met"),
            fine
        );
        match work.wait_deadline(&mut m, 0, SimTime::ZERO, SimTime::from_ns(1)) {
            Err(FabricError::Timeout { completes_at, .. }) => assert_eq!(completes_at, fine),
            other => panic!("expected Timeout, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn unbalanced_equal_split_panics() {
        let mut m = Machine::new(MachineConfig::dgx_v100(2));
        let inputs = vec![vec![0.0f32; 3], vec![0.0f32; 3]];
        let _ = all_to_all_single(&mut m, &CollectiveConfig::default(), &inputs, &ready(2));
    }

    #[test]
    #[should_panic(expected = "cover the whole input")]
    fn bad_counts_panic() {
        let mut m = Machine::new(MachineConfig::dgx_v100(2));
        let inputs = vec![vec![0.0f32; 4], vec![0.0f32; 4]];
        let counts = vec![vec![1, 1], vec![2, 2]];
        let _ = all_to_all_varied(
            &mut m,
            &CollectiveConfig::default(),
            &inputs,
            &counts,
            &ready(2),
        );
    }
}
