//! `all_to_all_single` — the baseline's layout-conversion collective.

use desim::SimTime;
use gpusim::{FabricError, Machine};

use crate::{d2d_copy_time, Algorithm, CollectiveConfig, WorkHandle, ELEM_BYTES};

/// PyTorch-style `all_to_all_single` with equal splits: every device's input
/// is cut into `n` equal chunks, chunk `j` of device `i` lands at slot `i`
/// of device `j`'s output. Inputs must all have the same length, divisible
/// by the device count.
///
/// Returns the received buffers and a [`WorkHandle`] with per-device
/// completion times.
pub fn all_to_all_single(
    machine: &mut Machine,
    cfg: &CollectiveConfig,
    inputs: &[Vec<f32>],
    ready: &[SimTime],
) -> (Vec<Vec<f32>>, WorkHandle) {
    let n = machine.n_gpus();
    assert_eq!(inputs.len(), n, "one input buffer per device");
    let len = inputs[0].len();
    for (i, buf) in inputs.iter().enumerate() {
        assert_eq!(buf.len(), len, "input {i} length mismatch");
    }
    assert_eq!(
        len % n,
        0,
        "input length {len} not divisible by {n} devices"
    );
    let per = len / n;
    let counts: Vec<Vec<usize>> = vec![vec![per; n]; n];
    all_to_all_varied(machine, cfg, inputs, &counts, ready)
}

/// `all_to_all_single` with explicit per-pair element counts:
/// `send_counts[i][j]` elements travel from device `i` to device `j`,
/// taken from `inputs[i]` in destination order. Device `j`'s output is the
/// concatenation over sources `i` of those segments, in source order.
pub fn all_to_all_varied(
    machine: &mut Machine,
    cfg: &CollectiveConfig,
    inputs: &[Vec<f32>],
    send_counts: &[Vec<usize>],
    ready: &[SimTime],
) -> (Vec<Vec<f32>>, WorkHandle) {
    let n = machine.n_gpus();
    assert_eq!(inputs.len(), n, "one input buffer per device");
    assert_eq!(send_counts.len(), n, "one send-count row per device");
    assert_eq!(ready.len(), n, "one ready time per device");
    for (i, row) in send_counts.iter().enumerate() {
        assert_eq!(row.len(), n, "send_counts[{i}] must have {n} columns");
        let total: usize = row.iter().sum();
        assert_eq!(
            total,
            inputs[i].len(),
            "send_counts[{i}] must cover the whole input"
        );
    }

    // ---- Functional data movement (algorithm-independent). ----
    let outputs = shuffle_functional(inputs, send_counts);

    // ---- Timed wire traffic. ----
    let bytes: Vec<Vec<u64>> = send_counts
        .iter()
        .map(|row| row.iter().map(|&c| c as u64 * ELEM_BYTES).collect())
        .collect();
    let work = all_to_all_timed(machine, cfg, &bytes, ready);
    (outputs, work)
}

/// Timing-only `all_to_all`: simulate the wire traffic for a byte matrix
/// (`send_bytes[i][j]` bytes from device `i` to device `j`) without moving
/// any functional data. Used by paper-scale runs where materializing the
/// buffers would be wasteful.
pub fn all_to_all_timed(
    machine: &mut Machine,
    cfg: &CollectiveConfig,
    send_bytes: &[Vec<u64>],
    ready: &[SimTime],
) -> WorkHandle {
    let n = machine.n_gpus();
    assert_eq!(send_bytes.len(), n, "one byte row per device");
    assert_eq!(ready.len(), n, "one ready time per device");
    for (i, row) in send_bytes.iter().enumerate() {
        assert_eq!(row.len(), n, "send_bytes[{i}] must have {n} columns");
    }
    let work = match cfg.algorithm {
        Algorithm::Direct => timed_direct(machine, cfg, send_bytes, ready),
        Algorithm::Ring => timed_ring(machine, cfg, send_bytes, ready),
    };
    record_collective_span(machine, ready, &work);
    work
}

/// Telemetry: one collective call plus its phase span (earliest participant
/// ready → last delivery). No-op when the machine's registry is disabled.
fn record_collective_span(machine: &mut Machine, ready: &[SimTime], work: &WorkHandle) {
    let m = machine.metrics_mut();
    if !m.is_enabled() {
        return;
    }
    m.incr("collective_calls", 0, 0);
    let start = ready.iter().copied().fold(work.all_done(), SimTime::min);
    let end = work.all_done();
    m.span("collective_span_ns", 0, 0, start, end);
    if end > start {
        m.observe(
            "collective_span_us",
            0,
            0,
            telemetry::US_BOUNDS,
            end.since(start).as_ns() / 1_000,
        );
    }
}

/// Fault-aware [`all_to_all_timed`]: every chunk is retried under the
/// config's retry policy when its link is down or the chunk is dropped; the
/// collective fails with [`FabricError::RetryExhausted`] only once a chunk's
/// retry budget is spent. On a clean fabric (or with no fault plan
/// installed) timing is bit-identical to the infallible path.
pub fn try_all_to_all_timed(
    machine: &mut Machine,
    cfg: &CollectiveConfig,
    send_bytes: &[Vec<u64>],
    ready: &[SimTime],
) -> Result<WorkHandle, FabricError> {
    let n = machine.n_gpus();
    assert_eq!(send_bytes.len(), n, "one byte row per device");
    assert_eq!(ready.len(), n, "one ready time per device");
    for (i, row) in send_bytes.iter().enumerate() {
        assert_eq!(row.len(), n, "send_bytes[{i}] must have {n} columns");
    }
    let work = match cfg.algorithm {
        Algorithm::Direct => try_timed_direct(machine, cfg, send_bytes, ready),
        Algorithm::Ring => try_timed_ring(machine, cfg, send_bytes, ready),
    }?;
    record_collective_span(machine, ready, &work);
    Ok(work)
}

/// Fault-aware [`all_to_all_varied`]: same functional output, fallible
/// timing. Functional delivery is computed first — under retries every row
/// still arrives, only later; rows are abandoned only if the collective
/// errors, and then the caller decides what to degrade.
pub fn try_all_to_all_varied(
    machine: &mut Machine,
    cfg: &CollectiveConfig,
    inputs: &[Vec<f32>],
    send_counts: &[Vec<usize>],
    ready: &[SimTime],
) -> Result<(Vec<Vec<f32>>, WorkHandle), FabricError> {
    let n = machine.n_gpus();
    assert_eq!(inputs.len(), n, "one input buffer per device");
    assert_eq!(send_counts.len(), n, "one send-count row per device");
    for (i, row) in send_counts.iter().enumerate() {
        assert_eq!(row.len(), n, "send_counts[{i}] must have {n} columns");
        let total: usize = row.iter().sum();
        assert_eq!(
            total,
            inputs[i].len(),
            "send_counts[{i}] must cover the whole input"
        );
    }
    let bytes: Vec<Vec<u64>> = send_counts
        .iter()
        .map(|row| row.iter().map(|&c| c as u64 * ELEM_BYTES).collect())
        .collect();
    let work = try_all_to_all_timed(machine, cfg, &bytes, ready)?;
    let outputs = shuffle_functional(inputs, send_counts);
    Ok((outputs, work))
}

/// The algorithm-independent functional data movement of an all-to-all.
fn shuffle_functional(inputs: &[Vec<f32>], send_counts: &[Vec<usize>]) -> Vec<Vec<f32>> {
    let n = inputs.len();
    let offsets: Vec<Vec<usize>> = send_counts
        .iter()
        .map(|row| {
            let mut off = 0;
            row.iter()
                .map(|&c| {
                    let o = off;
                    off += c;
                    o
                })
                .collect()
        })
        .collect();
    (0..n)
        .map(|dst| {
            let mut out = Vec::with_capacity((0..n).map(|s| send_counts[s][dst]).sum());
            for src in 0..n {
                let o = offsets[src][dst];
                out.extend_from_slice(&inputs[src][o..o + send_counts[src][dst]]);
            }
            out
        })
        .collect()
}

/// Pairwise schedule: each device pushes its per-destination segment
/// straight to the peer, chunked; the self segment is a device-local copy.
fn timed_direct(
    machine: &mut Machine,
    cfg: &CollectiveConfig,
    send_bytes: &[Vec<u64>],
    ready: &[SimTime],
) -> WorkHandle {
    let n = machine.n_gpus();
    let mut done = vec![SimTime::ZERO; n];
    for src in 0..n {
        let t0 = ready[src] + cfg.call_overhead;
        for dst in 0..n {
            let bytes = send_bytes[src][dst];
            if dst == src {
                let local_done = t0 + d2d_copy_time(bytes, machine.spec(src).mem_bw);
                done[src] = done[src].max(local_done);
                continue;
            }
            if bytes == 0 {
                done[dst] = done[dst].max(t0);
                continue;
            }
            // Chunked pipeline: each chunk is one message on the wire.
            let mut remaining = bytes;
            let mut last_end = t0;
            while remaining > 0 {
                let this = remaining.min(cfg.chunk_bytes);
                let iv = machine.send_throttled(src, dst, this, 1, t0, cfg.protocol_efficiency);
                last_end = last_end.max(iv.end);
                remaining -= this;
            }
            done[dst] = done[dst].max(last_end);
            done[src] = done[src].max(last_end);
        }
    }
    WorkHandle::new(done)
}

/// Fault-aware pairwise schedule: [`timed_direct`] with each chunk retried
/// under `cfg.retry`.
fn try_timed_direct(
    machine: &mut Machine,
    cfg: &CollectiveConfig,
    send_bytes: &[Vec<u64>],
    ready: &[SimTime],
) -> Result<WorkHandle, FabricError> {
    let n = machine.n_gpus();
    let mut done = vec![SimTime::ZERO; n];
    let mut retries = 0u64;
    for src in 0..n {
        let t0 = ready[src] + cfg.call_overhead;
        for dst in 0..n {
            let bytes = send_bytes[src][dst];
            if dst == src {
                let local_done = t0 + d2d_copy_time(bytes, machine.spec(src).mem_bw);
                done[src] = done[src].max(local_done);
                continue;
            }
            if bytes == 0 {
                done[dst] = done[dst].max(t0);
                continue;
            }
            let mut remaining = bytes;
            let mut last_end = t0;
            while remaining > 0 {
                let this = remaining.min(cfg.chunk_bytes);
                let (iv, attempts) = machine.try_send_retry(
                    src,
                    dst,
                    this,
                    1,
                    t0,
                    cfg.protocol_efficiency,
                    cfg.retry,
                )?;
                retries += u64::from(attempts - 1);
                last_end = last_end.max(iv.end);
                remaining -= this;
            }
            done[dst] = done[dst].max(last_end);
            done[src] = done[src].max(last_end);
        }
    }
    Ok(WorkHandle::with_retries(done, retries))
}

/// Fault-aware ring schedule: [`timed_ring`] with each hop retried under
/// `cfg.retry`.
fn try_timed_ring(
    machine: &mut Machine,
    cfg: &CollectiveConfig,
    send_bytes: &[Vec<u64>],
    ready: &[SimTime],
) -> Result<WorkHandle, FabricError> {
    let n = machine.n_gpus();
    if n == 1 {
        return Ok(WorkHandle::new(vec![ready[0] + cfg.call_overhead]));
    }
    let mut held: Vec<Vec<(usize, u64)>> = (0..n)
        .map(|src| {
            (0..n)
                .filter(|&d| d != src)
                .map(|d| (d, send_bytes[src][d]))
                .filter(|&(_, b)| b > 0)
                .collect()
        })
        .collect();
    let mut t: Vec<SimTime> = ready.iter().map(|&r| r + cfg.call_overhead).collect();
    let mut done = t.clone();
    let mut retries = 0u64;
    for src in 0..n {
        let bytes = send_bytes[src][src];
        let local = t[src] + d2d_copy_time(bytes, machine.spec(src).mem_bw);
        done[src] = done[src].max(local);
    }
    for _step in 1..n {
        let mut arriving: Vec<Vec<(usize, u64)>> = vec![Vec::new(); n];
        let mut arrive_time = vec![SimTime::ZERO; n];
        for src in 0..n {
            let next = (src + 1) % n;
            let parcels = std::mem::take(&mut held[src]);
            if parcels.is_empty() {
                continue;
            }
            let bytes: u64 = parcels.iter().map(|&(_, b)| b).sum();
            let (iv, attempts) = machine.try_send_retry(
                src,
                next,
                bytes,
                cfg.n_chunks(bytes),
                t[src],
                cfg.protocol_efficiency,
                cfg.retry,
            )?;
            retries += u64::from(attempts - 1);
            done[src] = done[src].max(iv.end);
            arrive_time[next] = arrive_time[next].max(iv.end);
            arriving[next].extend(parcels);
        }
        for rank in 0..n {
            let mut keep = Vec::new();
            for (dst, bytes) in arriving[rank].drain(..) {
                if dst == rank {
                    done[rank] = done[rank].max(arrive_time[rank]);
                } else {
                    keep.push((dst, bytes));
                }
            }
            held[rank] = keep;
            t[rank] = t[rank].max(arrive_time[rank]);
        }
    }
    Ok(WorkHandle::with_retries(done, retries))
}

/// Ring schedule: `n − 1` neighbor steps; parcels hop until they reach their
/// destination. Total wire volume exceeds the direct schedule (multi-hop),
/// which is why NCCL prefers peer-to-peer on a crossbar.
fn timed_ring(
    machine: &mut Machine,
    cfg: &CollectiveConfig,
    send_bytes: &[Vec<u64>],
    ready: &[SimTime],
) -> WorkHandle {
    let n = machine.n_gpus();
    if n == 1 {
        return WorkHandle::new(vec![ready[0] + cfg.call_overhead]);
    }
    // Parcels held at each rank: (dst, bytes).
    let mut held: Vec<Vec<(usize, u64)>> = (0..n)
        .map(|src| {
            (0..n)
                .filter(|&d| d != src)
                .map(|d| (d, send_bytes[src][d]))
                .filter(|&(_, b)| b > 0)
                .collect()
        })
        .collect();
    let mut t: Vec<SimTime> = ready.iter().map(|&r| r + cfg.call_overhead).collect();
    let mut done = t.clone();
    // Local self-copy happens immediately.
    for src in 0..n {
        let bytes = send_bytes[src][src];
        let local = t[src] + d2d_copy_time(bytes, machine.spec(src).mem_bw);
        done[src] = done[src].max(local);
    }
    for _step in 1..n {
        let mut arriving: Vec<Vec<(usize, u64)>> = vec![Vec::new(); n];
        let mut arrive_time = vec![SimTime::ZERO; n];
        for src in 0..n {
            let next = (src + 1) % n;
            let parcels = std::mem::take(&mut held[src]);
            if parcels.is_empty() {
                continue;
            }
            let bytes: u64 = parcels.iter().map(|&(_, b)| b).sum();
            let iv = machine.send_throttled(
                src,
                next,
                bytes,
                cfg.n_chunks(bytes),
                t[src],
                cfg.protocol_efficiency,
            );
            done[src] = done[src].max(iv.end);
            arrive_time[next] = arrive_time[next].max(iv.end);
            arriving[next].extend(parcels);
        }
        for rank in 0..n {
            let mut keep = Vec::new();
            for (dst, bytes) in arriving[rank].drain(..) {
                if dst == rank {
                    done[rank] = done[rank].max(arrive_time[rank]);
                } else {
                    keep.push((dst, bytes));
                }
            }
            held[rank] = keep;
            t[rank] = t[rank].max(arrive_time[rank]);
        }
    }
    WorkHandle::new(done)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpusim::MachineConfig;

    fn ready(n: usize) -> Vec<SimTime> {
        vec![SimTime::ZERO; n]
    }

    /// The reference semantics: output[j] = concat_i input[i].chunk(j).
    fn reference_equal(inputs: &[Vec<f32>]) -> Vec<Vec<f32>> {
        let n = inputs.len();
        let per = inputs[0].len() / n;
        (0..n)
            .map(|dst| {
                let mut out = Vec::new();
                for input in inputs {
                    out.extend_from_slice(&input[dst * per..(dst + 1) * per]);
                }
                out
            })
            .collect()
    }

    #[test]
    fn equal_split_matches_reference() {
        let n = 4;
        let mut m = Machine::new(MachineConfig::dgx_v100(n));
        let inputs: Vec<Vec<f32>> = (0..n)
            .map(|i| (0..8).map(|k| (i * 100 + k) as f32).collect())
            .collect();
        let (out, work) =
            all_to_all_single(&mut m, &CollectiveConfig::default(), &inputs, &ready(n));
        assert_eq!(out, reference_equal(&inputs));
        assert!(work.all_done() > SimTime::ZERO);
    }

    #[test]
    fn two_gpu_swap() {
        let mut m = Machine::new(MachineConfig::dgx_v100(2));
        let inputs = vec![vec![1.0, 2.0, 3.0, 4.0], vec![5.0, 6.0, 7.0, 8.0]];
        let (out, _) = all_to_all_single(&mut m, &CollectiveConfig::default(), &inputs, &ready(2));
        assert_eq!(out[0], vec![1.0, 2.0, 5.0, 6.0]);
        assert_eq!(out[1], vec![3.0, 4.0, 7.0, 8.0]);
    }

    #[test]
    fn varied_splits() {
        let mut m = Machine::new(MachineConfig::dgx_v100(2));
        // Device 0 sends 1 element to itself, 3 to device 1.
        // Device 1 sends 2 to device 0, 0 to itself.
        let inputs = vec![vec![10.0, 20.0, 30.0, 40.0], vec![50.0, 60.0]];
        let counts = vec![vec![1, 3], vec![2, 0]];
        let (out, _) = all_to_all_varied(
            &mut m,
            &CollectiveConfig::default(),
            &inputs,
            &counts,
            &ready(2),
        );
        assert_eq!(out[0], vec![10.0, 50.0, 60.0]);
        assert_eq!(out[1], vec![20.0, 30.0, 40.0]);
    }

    #[test]
    fn ring_moves_more_bytes_than_direct() {
        let n = 4;
        let inputs: Vec<Vec<f32>> = (0..n).map(|_| vec![1.0f32; 4096]).collect();
        let mut md = Machine::new(MachineConfig::dgx_v100(n));
        let (out_d, _) =
            all_to_all_single(&mut md, &CollectiveConfig::default(), &inputs, &ready(n));
        let mut mr = Machine::new(MachineConfig::dgx_v100(n));
        let (out_r, _) = all_to_all_single(
            &mut mr,
            &CollectiveConfig::default().with_algorithm(Algorithm::Ring),
            &inputs,
            &ready(n),
        );
        assert_eq!(out_d, out_r, "algorithms must agree functionally");
        assert!(
            mr.traffic_stats().payload_bytes > md.traffic_stats().payload_bytes,
            "ring multi-hop must move more total bytes"
        );
    }

    #[test]
    fn single_device_is_local_copy_only() {
        let mut m = Machine::new(MachineConfig::dgx_v100(1));
        let inputs = vec![vec![1.0, 2.0]];
        for alg in [Algorithm::Direct, Algorithm::Ring] {
            let (out, work) = all_to_all_single(
                &mut m,
                &CollectiveConfig::default().with_algorithm(alg),
                &inputs,
                &ready(1),
            );
            assert_eq!(out[0], inputs[0]);
            assert!(work.all_done() >= SimTime::ZERO + CollectiveConfig::default().call_overhead);
        }
        assert_eq!(m.traffic_stats().messages, 0, "no wire traffic on 1 GPU");
    }

    #[test]
    fn completion_respects_ready_times() {
        let mut m = Machine::new(MachineConfig::dgx_v100(2));
        let inputs = vec![vec![0.0f32; 1024], vec![0.0f32; 1024]];
        let late = SimTime::from_ms(5);
        let (_, work) = all_to_all_single(
            &mut m,
            &CollectiveConfig::default(),
            &inputs,
            &[late, SimTime::ZERO],
        );
        // Device 1 can't have the data destined from device 0 before `late`.
        assert!(work.done_at(1) > late);
    }

    #[test]
    fn chunking_splits_messages() {
        let mut m = Machine::new(MachineConfig::dgx_v100(2));
        let inputs = vec![vec![0.0f32; 2048], vec![0.0f32; 2048]];
        let cfg = CollectiveConfig::default().with_chunk_bytes(1024);
        let (_, _) = all_to_all_single(&mut m, &cfg, &inputs, &ready(2));
        // Each device sends 1024 elements = 4096 bytes = 4 chunks.
        assert_eq!(m.traffic_stats().messages, 8);
    }

    #[test]
    fn try_timed_without_faults_matches_timed() {
        let n = 4;
        let bytes: Vec<Vec<u64>> = (0..n).map(|_| vec![1 << 16; n]).collect();
        for alg in [Algorithm::Direct, Algorithm::Ring] {
            let cfg = CollectiveConfig::default().with_algorithm(alg);
            let mut m1 = Machine::new(MachineConfig::dgx_v100(n));
            let a = all_to_all_timed(&mut m1, &cfg, &bytes, &ready(n));
            let mut m2 = Machine::new(MachineConfig::dgx_v100(n));
            let b = try_all_to_all_timed(&mut m2, &cfg, &bytes, &ready(n)).expect("clean");
            for dev in 0..n {
                assert_eq!(a.done_at(dev), b.done_at(dev), "{alg:?} dev {dev}");
            }
            assert_eq!(b.retries(), 0);
            assert_eq!(m1.traffic_stats(), m2.traffic_stats());
        }
    }

    #[test]
    fn try_varied_matches_functional_reference() {
        let mut m = Machine::new(MachineConfig::dgx_v100(2));
        let inputs = vec![vec![10.0, 20.0, 30.0, 40.0], vec![50.0, 60.0]];
        let counts = vec![vec![1, 3], vec![2, 0]];
        let (out, work) = try_all_to_all_varied(
            &mut m,
            &CollectiveConfig::default(),
            &inputs,
            &counts,
            &ready(2),
        )
        .expect("clean fabric");
        assert_eq!(out[0], vec![10.0, 50.0, 60.0]);
        assert_eq!(out[1], vec![20.0, 30.0, 40.0]);
        assert!(work.all_done() > SimTime::ZERO);
    }

    #[test]
    fn try_timed_survives_chaos() {
        use gpusim::{FaultPlan, FaultSpec};
        let n = 4;
        let bytes: Vec<Vec<u64>> = (0..n).map(|_| vec![1 << 18; n]).collect();
        // A moderately hostile fabric: the collective must either complete
        // (possibly with retries) or fail with a typed error — never panic.
        let mut completions = 0;
        let mut total_retries = 0;
        for seed in 0..20u64 {
            let mut m = Machine::new(MachineConfig::dgx_v100(n));
            m.install_faults(FaultPlan::generate(seed, n, FaultSpec::chaos(0.8)));
            match try_all_to_all_timed(&mut m, &CollectiveConfig::default(), &bytes, &ready(n)) {
                Ok(w) => {
                    completions += 1;
                    total_retries += w.retries();
                }
                Err(e) => assert!(matches!(e, FabricError::RetryExhausted { .. })),
            }
        }
        assert!(completions > 0, "some seeds must complete");
        assert!(
            total_retries > 0,
            "chaos(0.8) must force at least one retry"
        );
    }

    #[test]
    fn wait_deadline_reports_timeout() {
        let mut m = Machine::new(MachineConfig::dgx_v100(2));
        let inputs = vec![vec![0.0f32; 1 << 16], vec![0.0f32; 1 << 16]];
        let (_, work) = all_to_all_single(&mut m, &CollectiveConfig::default(), &inputs, &ready(2));
        let fine = work.wait(&mut m, 0, SimTime::ZERO);
        assert_eq!(
            work.wait_deadline(&mut m, 0, SimTime::ZERO, fine)
                .expect("met"),
            fine
        );
        match work.wait_deadline(&mut m, 0, SimTime::ZERO, SimTime::from_ns(1)) {
            Err(FabricError::Timeout { completes_at, .. }) => assert_eq!(completes_at, fine),
            other => panic!("expected Timeout, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn unbalanced_equal_split_panics() {
        let mut m = Machine::new(MachineConfig::dgx_v100(2));
        let inputs = vec![vec![0.0f32; 3], vec![0.0f32; 3]];
        let _ = all_to_all_single(&mut m, &CollectiveConfig::default(), &inputs, &ready(2));
    }

    #[test]
    #[should_panic(expected = "cover the whole input")]
    fn bad_counts_panic() {
        let mut m = Machine::new(MachineConfig::dgx_v100(2));
        let inputs = vec![vec![0.0f32; 4], vec![0.0f32; 4]];
        let counts = vec![vec![1, 1], vec![2, 2]];
        let _ = all_to_all_varied(
            &mut m,
            &CollectiveConfig::default(),
            &inputs,
            &counts,
            &ready(2),
        );
    }
}
