//! Measurement recorders: bucketed time series, histograms, counters.
//!
//! [`TimeSeries`] is the workhorse behind the paper's Figures 7 and 10
//! ("communication volume over time"): every byte put on a simulated wire is
//! accumulated into a fixed-width time bucket, and the per-bucket (or
//! cumulative) series is read out at the end of the run.

use crate::{Dur, SimTime};

/// A fixed-bucket-width accumulator over simulation time.
#[derive(Clone, Debug)]
pub struct TimeSeries {
    bucket: Dur,
    values: Vec<f64>,
}

impl TimeSeries {
    /// A series with the given bucket width. Panics on a zero width.
    pub fn new(bucket: Dur) -> Self {
        assert!(!bucket.is_zero(), "TimeSeries bucket width must be > 0");
        TimeSeries {
            bucket,
            values: Vec::new(),
        }
    }

    /// Bucket width.
    pub fn bucket_width(&self) -> Dur {
        self.bucket
    }

    /// Add `value` at instant `t`.
    pub fn add(&mut self, t: SimTime, value: f64) {
        let idx = (t.as_ns() / self.bucket.as_ns()) as usize;
        if idx >= self.values.len() {
            self.values.resize(idx + 1, 0.0);
        }
        self.values[idx] += value;
    }

    /// Spread `value` uniformly over `[start, end)` — used to attribute a
    /// transfer's bytes across the interval it occupies the wire.
    pub fn add_spread(&mut self, start: SimTime, end: SimTime, value: f64) {
        if end <= start {
            self.add(start, value);
            return;
        }
        let total = (end - start).as_ns() as f64;
        let mut t = start;
        while t < end {
            let bucket_end =
                SimTime::from_ns(((t.as_ns() / self.bucket.as_ns()) + 1) * self.bucket.as_ns());
            let seg_end = bucket_end.min(end);
            let frac = (seg_end - t).as_ns() as f64 / total;
            self.add(t, value * frac);
            t = seg_end;
        }
    }

    /// Per-bucket values.
    pub fn buckets(&self) -> &[f64] {
        &self.values
    }

    /// `(bucket_start_time, value)` pairs.
    pub fn points(&self) -> impl Iterator<Item = (SimTime, f64)> + '_ {
        self.values
            .iter()
            .enumerate()
            .map(move |(i, &v)| (SimTime::from_ns(i as u64 * self.bucket.as_ns()), v))
    }

    /// Running cumulative sum per bucket.
    pub fn cumulative(&self) -> Vec<f64> {
        let mut acc = 0.0;
        self.values
            .iter()
            .map(|v| {
                acc += v;
                acc
            })
            .collect()
    }

    /// Sum over all buckets.
    pub fn total(&self) -> f64 {
        self.values.iter().sum()
    }

    /// Coefficient of variation (stddev / mean) of the per-bucket values over
    /// `[0, horizon)` — a burstiness measure. A perfectly smooth series has
    /// CV 0; a single burst has a large CV. Returns 0 for an empty horizon.
    pub fn burstiness(&self, horizon: SimTime) -> f64 {
        let n = (horizon.as_ns().div_ceil(self.bucket.as_ns())) as usize;
        if n == 0 {
            return 0.0;
        }
        let get = |i: usize| self.values.get(i).copied().unwrap_or(0.0);
        let mean = (0..n).map(get).sum::<f64>() / n as f64;
        if mean == 0.0 {
            return 0.0;
        }
        let var = (0..n).map(|i| (get(i) - mean).powi(2)).sum::<f64>() / n as f64;
        var.sqrt() / mean
    }
}

/// A power-of-two bucketed histogram of `u64` samples (e.g. message sizes).
#[derive(Clone, Debug, Default)]
pub struct Histogram {
    // counts[i] counts samples whose value has bit-length i (0 counts value 0).
    counts: Vec<u64>,
    total: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: Vec::new(),
            total: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Record one sample.
    pub fn record(&mut self, value: u64) {
        let idx = (64 - value.leading_zeros()) as usize;
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += 1;
        self.total += 1;
        self.sum += value as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Mean of samples (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Smallest sample (None if empty).
    pub fn min(&self) -> Option<u64> {
        (self.total > 0).then_some(self.min)
    }

    /// Largest sample (None if empty).
    pub fn max(&self) -> Option<u64> {
        (self.total > 0).then_some(self.max)
    }

    /// `(bucket_upper_bound, count)` for each non-empty power-of-two bucket.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(i, &c)| {
                let ub = if i == 0 { 0 } else { (1u64 << i) - 1 };
                (ub, c)
            })
    }
}

/// A monotonically increasing named counter.
#[derive(Clone, Debug, Default)]
pub struct Counter {
    value: u64,
}

impl Counter {
    /// A zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }
    /// Add `n`.
    pub fn add(&mut self, n: u64) {
        self.value += n;
    }
    /// Increment by one.
    pub fn incr(&mut self) {
        self.value += 1;
    }
    /// Current value.
    pub fn get(&self) -> u64 {
        self.value
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_series_accumulates_into_buckets() {
        let mut ts = TimeSeries::new(Dur::from_ns(10));
        ts.add(SimTime::from_ns(0), 1.0);
        ts.add(SimTime::from_ns(9), 2.0);
        ts.add(SimTime::from_ns(10), 4.0);
        ts.add(SimTime::from_ns(25), 8.0);
        assert_eq!(ts.buckets(), &[3.0, 4.0, 8.0]);
        assert_eq!(ts.cumulative(), vec![3.0, 7.0, 15.0]);
        assert_eq!(ts.total(), 15.0);
    }

    #[test]
    fn add_spread_conserves_mass() {
        let mut ts = TimeSeries::new(Dur::from_ns(10));
        ts.add_spread(SimTime::from_ns(5), SimTime::from_ns(35), 30.0);
        // 5ns in bucket0, 10 in bucket1, 10 in bucket2, 5 in bucket3.
        assert_eq!(ts.buckets(), &[5.0, 10.0, 10.0, 5.0]);
        assert!((ts.total() - 30.0).abs() < 1e-9);
    }

    #[test]
    fn add_spread_degenerate_interval() {
        let mut ts = TimeSeries::new(Dur::from_ns(10));
        ts.add_spread(SimTime::from_ns(7), SimTime::from_ns(7), 3.0);
        assert_eq!(ts.buckets(), &[3.0]);
    }

    #[test]
    fn points_carry_bucket_start_times() {
        let mut ts = TimeSeries::new(Dur::from_us(1));
        ts.add(SimTime::from_us(2), 5.0);
        let pts: Vec<_> = ts.points().collect();
        assert_eq!(pts.len(), 3);
        assert_eq!(pts[2], (SimTime::from_us(2), 5.0));
    }

    #[test]
    fn burstiness_flags_bursts() {
        let horizon = SimTime::from_ns(100);
        let mut smooth = TimeSeries::new(Dur::from_ns(10));
        for i in 0..10 {
            smooth.add(SimTime::from_ns(i * 10), 1.0);
        }
        let mut burst = TimeSeries::new(Dur::from_ns(10));
        burst.add(SimTime::from_ns(90), 10.0);
        assert!(smooth.burstiness(horizon) < 1e-9);
        assert!(burst.burstiness(horizon) > 2.0);
        assert_eq!(TimeSeries::new(Dur::from_ns(10)).burstiness(horizon), 0.0);
        assert_eq!(smooth.burstiness(SimTime::ZERO), 0.0);
    }

    #[test]
    fn histogram_basics() {
        let mut h = Histogram::new();
        assert_eq!(h.min(), None);
        for v in [0, 1, 2, 3, 256, 257] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(257));
        assert!((h.mean() - (1 + 2 + 3 + 256 + 257) as f64 / 6.0).abs() < 1e-12);
        let buckets: Vec<_> = h.buckets().collect();
        // value 0 -> bucket ub 0; 1 -> ub 1; 2,3 -> ub 3; 256,257 -> ub 511.
        assert_eq!(buckets, vec![(0, 1), (1, 1), (3, 2), (511, 2)]);
    }

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::new();
        c.incr();
        c.add(41);
        assert_eq!(c.get(), 42);
    }

    #[test]
    #[should_panic(expected = "bucket width")]
    fn zero_bucket_panics() {
        let _ = TimeSeries::new(Dur::ZERO);
    }
}
