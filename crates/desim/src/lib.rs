//! # desim — deterministic discrete-event simulation engine
//!
//! A small, allocation-light discrete-event simulation (DES) core used by the
//! GPU machine model ([`gpusim`](https://crates.io/crates/gpusim)) and the
//! communication layers built on top of it.
//!
//! Design goals:
//!
//! * **Determinism.** Events firing at the same timestamp are ordered by a
//!   monotonically increasing sequence number, so two runs of the same
//!   simulation produce bit-identical timelines regardless of hash-map
//!   iteration order or host parallelism.
//! * **No hidden clock.** All time is explicit [`SimTime`] / [`Dur`]
//!   nanoseconds; nothing reads the wall clock.
//! * **Composability.** The engine does not impose a process abstraction;
//!   higher layers drive [`EventQueue`] directly and use [`Resource`] /
//!   [`MultiResource`] to model serialized servers (links, DMA engines) and
//!   k-server stations (SMs executing thread blocks).
//!
//! ```
//! use desim::{EventQueue, Dur, SimTime};
//!
//! #[derive(Debug, PartialEq)]
//! enum Ev { Ping(u32) }
//!
//! let mut q = EventQueue::new();
//! q.schedule(Dur::from_us(5), Ev::Ping(1));
//! q.schedule(Dur::from_us(2), Ev::Ping(2));
//! let (t, ev) = q.pop().unwrap();
//! assert_eq!(t, SimTime::from_us(2));
//! assert_eq!(ev, Ev::Ping(2));
//! ```

#![warn(missing_docs)]

mod queue;
mod record;
mod resource;
mod time;

pub use queue::EventQueue;
pub use record::{Counter, Histogram, TimeSeries};
pub use resource::{Interval, MultiResource, Resource};
pub use time::{Dur, SimTime};
