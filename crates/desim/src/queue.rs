//! The deterministic event queue at the heart of the engine.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::{Dur, SimTime};

/// A deterministic future-event list.
///
/// Events are delivered in `(time, insertion-sequence)` order: ties at the
/// same timestamp fire in the order they were scheduled, which makes whole
/// simulations reproducible without requiring the event payload to be `Ord`.
///
/// Popping an event advances the simulation clock ([`EventQueue::now`]).
/// Scheduling in the past panics — a DES that rewrites history is a bug, not
/// a feature.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    now: SimTime,
    seq: u64,
    delivered: u64,
}

struct Entry<E> {
    time: SimTime,
    seq: u64,
    ev: E,
}

// Min-heap by (time, seq): BinaryHeap is a max-heap, so invert the ordering.
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            now: SimTime::ZERO,
            seq: 0,
            delivered: 0,
        }
    }

    /// Current simulation time: the timestamp of the most recently popped
    /// event (or zero before any event fires).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events waiting to fire.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events delivered so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Schedule `ev` to fire `delay` after the current time.
    pub fn schedule(&mut self, delay: Dur, ev: E) {
        self.schedule_at(self.now + delay, ev);
    }

    /// Schedule `ev` at an absolute instant. Panics if `time` is in the past.
    pub fn schedule_at(&mut self, time: SimTime, ev: E) {
        assert!(
            time >= self.now,
            "EventQueue::schedule_at: {time:?} is before now ({:?})",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { time, seq, ev });
    }

    /// Timestamp of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Remove and return the next event, advancing the clock to its
    /// timestamp. Returns `None` when the queue is empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        debug_assert!(entry.time >= self.now, "event queue time went backwards");
        self.now = entry.time;
        self.delivered += 1;
        Some((entry.time, entry.ev))
    }

    /// Run the queue to exhaustion, calling `handler` for every event.
    ///
    /// The handler may schedule further events through the `&mut EventQueue`
    /// it receives. Returns the final simulation time.
    pub fn run(&mut self, mut handler: impl FnMut(&mut Self, SimTime, E)) -> SimTime {
        while let Some((t, ev)) = self.pop() {
            handler(self, t, ev);
        }
        self.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(Dur::from_ns(30), "c");
        q.schedule(Dur::from_ns(10), "a");
        q.schedule(Dur::from_ns(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
        assert_eq!(q.now(), SimTime::from_ns(30));
        assert_eq!(q.delivered(), 3);
    }

    #[test]
    fn ties_fire_in_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(Dur::from_ns(5), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut q = EventQueue::new();
        q.schedule(Dur::from_ns(10), ());
        q.schedule(Dur::from_ns(10), ());
        q.schedule(Dur::from_ns(25), ());
        let mut last = SimTime::ZERO;
        while let Some((t, _)) = q.pop() {
            assert!(t >= last);
            last = t;
        }
    }

    #[test]
    fn handler_can_cascade_events() {
        // A chain: each event at t schedules a follow-up at t+10, five deep.
        let mut q = EventQueue::new();
        q.schedule(Dur::from_ns(10), 0u32);
        let mut seen = Vec::new();
        let end = q.run(|q, _t, depth| {
            seen.push(depth);
            if depth < 4 {
                q.schedule(Dur::from_ns(10), depth + 1);
            }
        });
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);
        assert_eq!(end, SimTime::from_ns(50));
    }

    #[test]
    #[should_panic(expected = "before now")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(Dur::from_ns(100), ());
        q.pop();
        q.schedule_at(SimTime::from_ns(50), ());
    }

    #[test]
    fn peek_does_not_advance() {
        let mut q = EventQueue::new();
        q.schedule(Dur::from_ns(42), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_ns(42)));
        assert_eq!(q.now(), SimTime::ZERO);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }
}
