//! Serialized and k-server resources.
//!
//! These model contention analytically rather than with explicit queueing
//! events: a caller asks "I arrive at `t` and need `d` of service — when do I
//! start and finish?" and the resource answers while updating its internal
//! availability. Because callers must present non-decreasing arrival times
//! relative to how the orchestrator discovers work, this matches FIFO service
//! order, which is what links and DMA engines provide.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::{Dur, SimTime};

/// A half-open service interval `[start, end)` granted by a resource.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interval {
    /// When service begins (>= arrival time).
    pub start: SimTime,
    /// When service completes.
    pub end: SimTime,
}

impl Interval {
    /// Length of the interval.
    pub fn duration(&self) -> Dur {
        self.end - self.start
    }
}

/// A single FIFO server: at most one job in service at a time
/// (e.g. one direction of a point-to-point link).
#[derive(Clone, Debug, Default)]
pub struct Resource {
    free_at: SimTime,
    busy: Dur,
    jobs: u64,
}

impl Resource {
    /// A resource idle from t=0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Request `service` time starting no earlier than `arrive`.
    pub fn acquire(&mut self, arrive: SimTime, service: Dur) -> Interval {
        let start = self.free_at.max(arrive);
        let end = start + service;
        self.free_at = end;
        self.busy += service;
        self.jobs += 1;
        Interval { start, end }
    }

    /// When the resource next becomes idle.
    pub fn free_at(&self) -> SimTime {
        self.free_at
    }

    /// Total busy time accumulated.
    pub fn busy_time(&self) -> Dur {
        self.busy
    }

    /// Number of jobs served.
    pub fn jobs_served(&self) -> u64 {
        self.jobs
    }

    /// Utilization over `[0, horizon)`. Returns 0 for a zero horizon.
    pub fn utilization(&self, horizon: SimTime) -> f64 {
        if horizon == SimTime::ZERO {
            0.0
        } else {
            self.busy.as_secs_f64() / horizon.as_secs_f64()
        }
    }
}

/// A station of `k` identical FIFO servers (e.g. a GPU that can execute up to
/// `k` thread blocks concurrently). Jobs are dispatched to the
/// earliest-available server.
#[derive(Clone, Debug)]
pub struct MultiResource {
    // Min-heap of server free times.
    servers: BinaryHeap<Reverse<SimTime>>,
    busy: Dur,
    jobs: u64,
}

impl MultiResource {
    /// A station with `k >= 1` servers, all idle from t=0.
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "MultiResource needs at least one server");
        MultiResource {
            servers: (0..k).map(|_| Reverse(SimTime::ZERO)).collect(),
            busy: Dur::ZERO,
            jobs: 0,
        }
    }

    /// Number of servers.
    pub fn capacity(&self) -> usize {
        self.servers.len()
    }

    /// Request `service` time on the earliest-available server, starting no
    /// earlier than `arrive`.
    pub fn acquire(&mut self, arrive: SimTime, service: Dur) -> Interval {
        let Reverse(free) = self.servers.pop().expect("at least one server");
        let start = free.max(arrive);
        let end = start + service;
        self.servers.push(Reverse(end));
        self.busy += service;
        self.jobs += 1;
        Interval { start, end }
    }

    /// The earliest time any server is free.
    pub fn earliest_free(&self) -> SimTime {
        self.servers.peek().map(|r| r.0).unwrap_or(SimTime::ZERO)
    }

    /// The time when *all* servers are free (completion of all work).
    pub fn all_free(&self) -> SimTime {
        self.servers
            .iter()
            .map(|r| r.0)
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// Total busy time accumulated across all servers.
    pub fn busy_time(&self) -> Dur {
        self.busy
    }

    /// Number of jobs served.
    pub fn jobs_served(&self) -> u64 {
        self.jobs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resource_serializes_back_to_back() {
        let mut r = Resource::new();
        let a = r.acquire(SimTime::ZERO, Dur::from_ns(10));
        let b = r.acquire(SimTime::ZERO, Dur::from_ns(10));
        assert_eq!(a.start, SimTime::ZERO);
        assert_eq!(a.end, SimTime::from_ns(10));
        assert_eq!(b.start, SimTime::from_ns(10));
        assert_eq!(b.end, SimTime::from_ns(20));
        assert_eq!(r.busy_time(), Dur::from_ns(20));
        assert_eq!(r.jobs_served(), 2);
    }

    #[test]
    fn resource_idles_until_arrival() {
        let mut r = Resource::new();
        let a = r.acquire(SimTime::from_ns(100), Dur::from_ns(10));
        assert_eq!(a.start, SimTime::from_ns(100));
        // Utilization: busy 10ns over a 200ns horizon.
        assert!((r.utilization(SimTime::from_ns(200)) - 0.05).abs() < 1e-12);
        assert_eq!(r.utilization(SimTime::ZERO), 0.0);
    }

    #[test]
    fn interval_duration() {
        let i = Interval {
            start: SimTime::from_ns(5),
            end: SimTime::from_ns(12),
        };
        assert_eq!(i.duration(), Dur::from_ns(7));
    }

    #[test]
    fn multi_resource_runs_k_jobs_concurrently() {
        let mut m = MultiResource::new(3);
        for _ in 0..3 {
            let i = m.acquire(SimTime::ZERO, Dur::from_ns(10));
            assert_eq!(i.start, SimTime::ZERO);
        }
        // Fourth job waits for the first server to free.
        let i = m.acquire(SimTime::ZERO, Dur::from_ns(10));
        assert_eq!(i.start, SimTime::from_ns(10));
        assert_eq!(m.all_free(), SimTime::from_ns(20));
        assert_eq!(m.earliest_free(), SimTime::from_ns(10));
        assert_eq!(m.jobs_served(), 4);
        assert_eq!(m.capacity(), 3);
    }

    #[test]
    fn multi_resource_wave_timing_matches_closed_form() {
        // 10 equal blocks on 4 servers => ceil(10/4)=3 waves.
        let mut m = MultiResource::new(4);
        let d = Dur::from_ns(7);
        for _ in 0..10 {
            m.acquire(SimTime::ZERO, d);
        }
        assert_eq!(m.all_free(), SimTime::ZERO + d * 3);
        assert_eq!(m.busy_time(), d * 10);
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn zero_capacity_panics() {
        let _ = MultiResource::new(0);
    }
}
