//! Simulation time types.
//!
//! [`SimTime`] is an absolute instant (nanoseconds since simulation start);
//! [`Dur`] is a span. Keeping the two distinct prevents the classic bug of
//! adding two absolute timestamps.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute simulation instant, in nanoseconds since simulation start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulation time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Dur(u64);

impl SimTime {
    /// Simulation start (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable instant; useful as an "unscheduled" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds.
    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns)
    }
    /// Construct from microseconds.
    pub const fn from_us(us: u64) -> Self {
        SimTime(us * 1_000)
    }
    /// Construct from milliseconds.
    pub const fn from_ms(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }
    /// Raw nanoseconds since start.
    pub const fn as_ns(self) -> u64 {
        self.0
    }
    /// Seconds since start as `f64`.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }
    /// Milliseconds since start as `f64`.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }
    /// Microseconds since start as `f64`.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }
    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }
    /// The earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }
    /// Span since an earlier instant. Panics if `earlier` is later than `self`.
    pub fn since(self, earlier: SimTime) -> Dur {
        assert!(
            earlier.0 <= self.0,
            "SimTime::since: earlier ({earlier:?}) is after self ({self:?})"
        );
        Dur(self.0 - earlier.0)
    }
}

impl Dur {
    /// Zero-length span.
    pub const ZERO: Dur = Dur(0);

    /// Construct from raw nanoseconds.
    pub const fn from_ns(ns: u64) -> Self {
        Dur(ns)
    }
    /// Construct from microseconds.
    pub const fn from_us(us: u64) -> Self {
        Dur(us * 1_000)
    }
    /// Construct from milliseconds.
    pub const fn from_ms(ms: u64) -> Self {
        Dur(ms * 1_000_000)
    }
    /// Construct from fractional seconds, rounding to the nearest nanosecond.
    ///
    /// Panics on negative or non-finite input.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "Dur::from_secs_f64: invalid duration {secs}"
        );
        Dur((secs * 1e9).round() as u64)
    }
    /// Raw nanoseconds.
    pub const fn as_ns(self) -> u64 {
        self.0
    }
    /// Seconds as `f64`.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }
    /// Milliseconds as `f64`.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }
    /// Microseconds as `f64`.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }
    /// The longer of two spans.
    pub fn max(self, other: Dur) -> Dur {
        Dur(self.0.max(other.0))
    }
    /// The shorter of two spans.
    pub fn min(self, other: Dur) -> Dur {
        Dur(self.0.min(other.0))
    }
    /// True if this span is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
    /// Saturating subtraction of spans.
    pub fn saturating_sub(self, other: Dur) -> Dur {
        Dur(self.0.saturating_sub(other.0))
    }
}

impl Add<Dur> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: Dur) -> SimTime {
        SimTime(self.0.checked_add(rhs.0).expect("SimTime overflow"))
    }
}

impl AddAssign<Dur> for SimTime {
    fn add_assign(&mut self, rhs: Dur) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Dur;
    fn sub(self, rhs: SimTime) -> Dur {
        self.since(rhs)
    }
}

impl Sub<Dur> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: Dur) -> SimTime {
        assert!(
            self.0 >= rhs.0,
            "SimTime - Dur underflow: {self:?} - {rhs:?}"
        );
        SimTime(self.0 - rhs.0)
    }
}

impl Add for Dur {
    type Output = Dur;
    fn add(self, rhs: Dur) -> Dur {
        Dur(self.0.checked_add(rhs.0).expect("Dur overflow"))
    }
}

impl AddAssign for Dur {
    fn add_assign(&mut self, rhs: Dur) {
        *self = *self + rhs;
    }
}

impl Sub for Dur {
    type Output = Dur;
    fn sub(self, rhs: Dur) -> Dur {
        assert!(self.0 >= rhs.0, "Dur underflow: {self:?} - {rhs:?}");
        Dur(self.0 - rhs.0)
    }
}

impl SubAssign for Dur {
    fn sub_assign(&mut self, rhs: Dur) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for Dur {
    type Output = Dur;
    fn mul(self, rhs: u64) -> Dur {
        Dur(self.0.checked_mul(rhs).expect("Dur overflow"))
    }
}

impl Mul<f64> for Dur {
    type Output = Dur;
    fn mul(self, rhs: f64) -> Dur {
        assert!(rhs.is_finite() && rhs >= 0.0, "Dur * {rhs}: invalid factor");
        Dur((self.0 as f64 * rhs).round() as u64)
    }
}

impl Div<u64> for Dur {
    type Output = Dur;
    fn div(self, rhs: u64) -> Dur {
        Dur(self.0 / rhs)
    }
}

impl Sum for Dur {
    fn sum<I: Iterator<Item = Dur>>(iter: I) -> Dur {
        iter.fold(Dur::ZERO, Add::add)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", fmt_ns(self.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", fmt_ns(self.0))
    }
}

impl fmt::Debug for Dur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", fmt_ns(self.0))
    }
}

impl fmt::Display for Dur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", fmt_ns(self.0))
    }
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_us(3).as_ns(), 3_000);
        assert_eq!(SimTime::from_ms(3).as_ns(), 3_000_000);
        assert_eq!(Dur::from_us(7).as_ns(), 7_000);
        assert_eq!(Dur::from_ms(7).as_ns(), 7_000_000);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_ns(100) + Dur::from_ns(50);
        assert_eq!(t.as_ns(), 150);
        assert_eq!((t - SimTime::from_ns(100)).as_ns(), 50);
        assert_eq!((Dur::from_ns(10) + Dur::from_ns(5)).as_ns(), 15);
        assert_eq!((Dur::from_ns(10) - Dur::from_ns(5)).as_ns(), 5);
        assert_eq!((Dur::from_ns(10) * 3).as_ns(), 30);
        assert_eq!((Dur::from_ns(10) / 2).as_ns(), 5);
    }

    #[test]
    fn float_conversions() {
        assert!((Dur::from_secs_f64(1.5).as_ns() as i64 - 1_500_000_000).abs() <= 1);
        assert!((SimTime::from_ms(1500).as_secs_f64() - 1.5).abs() < 1e-12);
        assert!((Dur::from_us(1500).as_millis_f64() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn scalar_float_mul_rounds() {
        assert_eq!((Dur::from_ns(10) * 0.25).as_ns(), 3); // 2.5 rounds to 3 (round half away)
        assert_eq!((Dur::from_ns(100) * 0.5).as_ns(), 50);
    }

    #[test]
    #[should_panic(expected = "earlier")]
    fn since_panics_on_negative_span() {
        let _ = SimTime::from_ns(5).since(SimTime::from_ns(10));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn dur_sub_underflow_panics() {
        let _ = Dur::from_ns(1) - Dur::from_ns(2);
    }

    #[test]
    fn saturating_sub() {
        assert_eq!(Dur::from_ns(1).saturating_sub(Dur::from_ns(2)), Dur::ZERO);
        assert_eq!(
            Dur::from_ns(5).saturating_sub(Dur::from_ns(2)),
            Dur::from_ns(3)
        );
    }

    #[test]
    fn min_max() {
        let a = SimTime::from_ns(1);
        let b = SimTime::from_ns(2);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!(Dur::from_ns(1).max(Dur::from_ns(2)), Dur::from_ns(2));
        assert_eq!(Dur::from_ns(1).min(Dur::from_ns(2)), Dur::from_ns(1));
    }

    #[test]
    fn display_units() {
        assert_eq!(format!("{}", Dur::from_ns(12)), "12ns");
        assert_eq!(format!("{}", Dur::from_us(12)), "12.000us");
        assert_eq!(format!("{}", Dur::from_ms(12)), "12.000ms");
        assert_eq!(format!("{}", Dur::from_ms(12_000)), "12.000s");
    }

    #[test]
    fn dur_sum() {
        let total: Dur = [Dur::from_ns(1), Dur::from_ns(2), Dur::from_ns(3)]
            .into_iter()
            .sum();
        assert_eq!(total.as_ns(), 6);
    }
}
