//! Property-based tests for the DES engine invariants.

use desim::{Dur, EventQueue, MultiResource, Resource, SimTime, TimeSeries};
use proptest::prelude::*;

proptest! {
    /// Events always pop in non-decreasing time order, and ties pop in
    /// insertion order, for arbitrary schedules.
    #[test]
    fn queue_is_deterministically_ordered(delays in prop::collection::vec(0u64..1000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &d) in delays.iter().enumerate() {
            q.schedule_at(SimTime::from_ns(d), i);
        }
        let mut last = (SimTime::ZERO, 0usize);
        let mut popped = 0usize;
        while let Some((t, id)) = q.pop() {
            let key = (t, id);
            if t == last.0 && popped > 0 {
                // Same timestamp: insertion order (ids were inserted ascending).
                prop_assert!(id > last.1);
            }
            prop_assert!(t >= last.0);
            last = key;
            popped += 1;
        }
        prop_assert_eq!(popped, delays.len());
    }

    /// A serialized resource never overlaps service intervals and conserves
    /// busy time.
    #[test]
    fn resource_intervals_never_overlap(jobs in prop::collection::vec((0u64..1000, 1u64..100), 1..100)) {
        let mut r = Resource::new();
        let mut prev_end = SimTime::ZERO;
        let mut total = Dur::ZERO;
        // Present arrivals in sorted order, as an orchestrator would.
        let mut jobs = jobs;
        jobs.sort();
        for (arrive, service) in jobs {
            let iv = r.acquire(SimTime::from_ns(arrive), Dur::from_ns(service));
            prop_assert!(iv.start >= prev_end);
            prop_assert!(iv.start >= SimTime::from_ns(arrive));
            prop_assert_eq!(iv.duration(), Dur::from_ns(service));
            prev_end = iv.end;
            total += Dur::from_ns(service);
        }
        prop_assert_eq!(r.busy_time(), total);
    }

    /// A k-server station never has more than k overlapping intervals, and
    /// its makespan is between the work/k lower bound and the serial upper
    /// bound when everything arrives at t=0.
    #[test]
    fn multi_resource_respects_capacity(k in 1usize..8, services in prop::collection::vec(1u64..100, 1..100)) {
        let mut m = MultiResource::new(k);
        let mut intervals = Vec::new();
        for &s in &services {
            intervals.push(m.acquire(SimTime::ZERO, Dur::from_ns(s)));
        }
        // Check overlap cardinality at every interval start.
        for iv in &intervals {
            let overlapping = intervals
                .iter()
                .filter(|o| o.start <= iv.start && iv.start < o.end)
                .count();
            prop_assert!(overlapping <= k);
        }
        let work: u64 = services.iter().sum();
        let makespan = m.all_free().as_ns();
        prop_assert!(makespan >= work.div_ceil(k as u64));
        prop_assert!(makespan <= work);
    }

    /// add_spread conserves mass for arbitrary intervals.
    #[test]
    fn time_series_spread_conserves_mass(
        bucket in 1u64..50,
        start in 0u64..1000,
        len in 0u64..500,
        value in 0.0f64..1e6,
    ) {
        let mut ts = TimeSeries::new(Dur::from_ns(bucket));
        ts.add_spread(SimTime::from_ns(start), SimTime::from_ns(start + len), value);
        prop_assert!((ts.total() - value).abs() < 1e-6 * value.max(1.0));
    }

    /// Cumulative series is monotone for non-negative inputs.
    #[test]
    fn cumulative_is_monotone(adds in prop::collection::vec((0u64..1000, 0.0f64..100.0), 0..100)) {
        let mut ts = TimeSeries::new(Dur::from_ns(7));
        for (t, v) in adds {
            ts.add(SimTime::from_ns(t), v);
        }
        let cum = ts.cumulative();
        for w in cum.windows(2) {
            prop_assert!(w[1] >= w[0]);
        }
    }
}
