//! # pgas-embedding — umbrella crate
//!
//! Re-exports the full reproduction stack of *"Accelerating Multi-GPU
//! Embedding Retrieval with PGAS-Style Communication for Deep Learning
//! Recommendation Systems"* (SC 2024) under one roof, and hosts the
//! repository-level examples and integration tests.

pub use desim;
pub use dlrm_model as dlrm;
pub use emb_retrieval as retrieval;
pub use gpusim;
pub use pgas_rt as pgas;
pub use simccl;
pub use simtensor as tensor;
pub use telemetry;
