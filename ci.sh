#!/usr/bin/env sh
# Repo CI gate: formatting, release build, full test suite (under a 1-thread
# and a 4-thread worker pool, to exercise the parallel engine's determinism
# contract), lint-clean under clippy, a fast end-to-end serving smoke
# (EXT-8), the hot-row-cache skew-sweep smoke (EXT-9, asserts
# BENCH_skew.json is produced and well-formed), the link-utilization smoke
# (EXT-10, asserts BENCH_netutil.json is produced with the smoothing claim
# holding), and the wall-clock benchmark smoke (asserts BENCH_wallclock.json
# is produced and well-formed), the chaos-sweep smoke (EXT-7, asserts the
# SLO-violation-minutes columns land in chaos.csv), the pod-fabric smoke
# (EXT-11, asserts BENCH_pods.json is produced with both crossover claims
# holding), the executed-pipeline smoke (EXT-15, asserts BENCH_pipeline.json
# is produced with both scheduling claims holding), and the
# adaptive control-plane smoke (EXT-13, asserts
# BENCH_adapt.json is produced and claims adaptive dominance), the
# critical-path blame smoke (EXT-16, asserts BENCH_blame.json is produced
# with the exposed-communication claim holding), and a telemetry-off
# byte-identity check (fresh weak-scaling CSVs must match the committed
# results/ bodies exactly). Run from the repo root. Fails fast on the
# first broken step.
set -eu

cargo fmt --all -- --check
cargo build --release --workspace --offline
RAYON_NUM_THREADS=1 cargo test -q --workspace --offline
RAYON_NUM_THREADS=4 cargo test -q --workspace --offline
cargo clippy --all-targets --workspace --offline -- -D warnings
# Targeted perf-lint pass over the serial hot path (core + pool): deny the
# allocation/copy lints the arena overhaul exists to keep out.
cargo clippy -p emb-retrieval -p rayon --all-targets --offline -- \
    -D warnings \
    -D clippy::redundant_clone \
    -D clippy::unnecessary_to_owned \
    -D clippy::cloned_instead_of_copied \
    -D clippy::inefficient_to_string
cargo run --release -p bench-harness --offline -- serve --smoke

wc_dir=$(mktemp -d)
trap 'rm -rf "$wc_dir"' EXIT
# The binary itself validates the JSON (validate_wallclock_json) and panics
# on a malformed document; the shell checks the artifact landed non-empty
# with the expected top-level keys.
cargo run --release -p bench-harness --offline -- wallclock --smoke --out-dir "$wc_dir" > /dev/null
test -s "$wc_dir/BENCH_wallclock.json"
grep -q '"threads"' "$wc_dir/BENCH_wallclock.json"
grep -q '"benchmarks"' "$wc_dir/BENCH_wallclock.json"
grep -q '"bit_identical": true' "$wc_dir/BENCH_wallclock.json"
# Serial hot-path perf gates: the end-to-end batch must (a) never slow down
# when widening the pool (speedup_vs_1 >= 1 at every thread count — inline
# degradation makes this exact on small hosts) and (b) beat the pre-overhaul
# serial time of 0.000906 s at this smoke scale.
awk '
  /"name": "end_to_end_batch"/ { inb = 1 }
  inb && /"best_secs"/ {
    line = $0; sub(/.*\[/, "", line); sub(/\].*/, "", line)
    split(line, a, ","); serial = a[1] + 0
  }
  inb && /"speedup_vs_1"/ {
    line = $0; sub(/.*\[/, "", line); sub(/\].*/, "", line)
    n = split(line, s, ",")
    for (i = 1; i <= n; i++) if (s[i] + 0 < 1.0) bad = 1
    exit
  }
  END {
    if (serial <= 0 || serial >= 0.000906) {
      print "ci: end_to_end_batch serial " serial "s not under seed 0.000906s" > "/dev/stderr"
      exit 1
    }
    if (bad) {
      print "ci: end_to_end_batch self-speedup dipped below 1.0" > "/dev/stderr"
      exit 1
    }
  }
' "$wc_dir/BENCH_wallclock.json"
# Zero-allocation claim: one warmed arena_reuse repetition must not touch
# the heap (the counting allocator measured exactly 0 calls).
grep -q '"steady_allocs": 0' "$wc_dir/BENCH_wallclock.json"

# EXT-9 smoke: a tiny cache x skew grid must still emit a well-formed
# BENCH_skew.json (the binary validates it; the shell re-checks the keys).
cargo run --release -p bench-harness --offline -- skew --smoke --out-dir "$wc_dir" > /dev/null
test -s "$wc_dir/BENCH_skew.json"
grep -q '"cells"' "$wc_dir/BENCH_skew.json"
grep -q '"measured_hit"' "$wc_dir/BENCH_skew.json"
grep -q '"headline_pgas_speedup"' "$wc_dir/BENCH_skew.json"

# EXT-10 smoke: the link-utilization experiment must emit well-formed
# artifacts and the smoothing claim must hold (PGAS peak-to-mean strictly
# below baseline — the validator refuses to emit otherwise; the shell
# re-checks the flag and the headline keys).
cargo run --release -p bench-harness --offline -- netutil --smoke --out-dir "$wc_dir" > /dev/null
test -s "$wc_dir/netutil.csv"
test -s "$wc_dir/BENCH_netutil.json"
grep -q '"experiment": "netutil"' "$wc_dir/BENCH_netutil.json"
grep -q '"peak_to_mean"' "$wc_dir/BENCH_netutil.json"
grep -q '"smoothing_ok": true' "$wc_dir/BENCH_netutil.json"
# EXT-7 smoke: the chaos sweep must run end to end at CI scale and report
# the SLO-violation-minutes columns for both backends.
cargo run --release -p bench-harness --offline -- chaos --smoke --out-dir "$wc_dir" > /dev/null
test -s "$wc_dir/chaos.csv"
grep -q 'pgas_slo_viol_min' "$wc_dir/chaos.csv"
grep -q 'base_slo_viol_min' "$wc_dir/chaos.csv"

# EXT-11 smoke: the pod-fabric sweep must emit both artifacts and both
# crossover claims must hold (flat per-row PGAS losing to the hierarchical
# alltoall across nodes, and gateway aggregation restoring the PGAS win —
# the validator refuses to emit a false claim; the shell re-checks and
# refuses a false flag outright), plus the EXT-2 cross-check staying
# within its 10% tolerance.
cargo run --release -p bench-harness --offline -- pods --smoke --out-dir "$wc_dir" > /dev/null
test -s "$wc_dir/pods.csv"
test -s "$wc_dir/BENCH_pods.json"
grep -q '"experiment": "pods"' "$wc_dir/BENCH_pods.json"
grep -q '"ext2_crosscheck"' "$wc_dir/BENCH_pods.json"
if grep -q '"flat_pgas_loses_cross_node": false' "$wc_dir/BENCH_pods.json"; then
    echo "ci: BENCH_pods.json claims flat PGAS never loses across nodes" >&2
    exit 1
fi
if grep -q '"gateway_recovers_pgas": false' "$wc_dir/BENCH_pods.json"; then
    echo "ci: BENCH_pods.json claims gateway aggregation does NOT recover the win" >&2
    exit 1
fi
grep -q '"flat_pgas_loses_cross_node": true' "$wc_dir/BENCH_pods.json"
grep -q '"gateway_recovers_pgas": true' "$wc_dir/BENCH_pods.json"
grep -q '"within_tolerance": true' "$wc_dir/BENCH_pods.json"

# EXT-15 smoke: the executed-pipeline sweep must emit both artifacts and
# both scheduling claims must hold (the fused + software-pipelined schedule
# beating the analytic serial one on every cell for both backends, and a
# single-node cell where PGAS's lead does not shrink under fusion — the
# validator refuses to emit a false claim; the shell re-checks and refuses
# a false flag outright).
cargo run --release -p bench-harness --offline -- pipeline --smoke --out-dir "$wc_dir" > /dev/null
test -s "$wc_dir/pipeline.csv"
test -s "$wc_dir/BENCH_pipeline.json"
grep -q '"experiment": "pipeline"' "$wc_dir/BENCH_pipeline.json"
grep -q '"base_exec_ms"' "$wc_dir/BENCH_pipeline.json"
if grep -q '"fusion_wins": false' "$wc_dir/BENCH_pipeline.json"; then
    echo "ci: BENCH_pipeline.json claims the executed schedule does NOT beat analytic-serial" >&2
    exit 1
fi
if grep -q '"pgas_lead_widens": false' "$wc_dir/BENCH_pipeline.json"; then
    echo "ci: BENCH_pipeline.json claims fusion does NOT widen the PGAS lead" >&2
    exit 1
fi
grep -q '"fusion_wins": true' "$wc_dir/BENCH_pipeline.json"
grep -q '"pgas_lead_widens": true' "$wc_dir/BENCH_pipeline.json"

# EXT-16 smoke: the critical-path blame decomposition must emit all three
# artifacts and the exposed-communication claim must hold (>= 30% of the
# baseline critical path, <= 5% under PGAS, on the DGX pair at paper
# scale — the validator refuses to emit a false claim; the shell re-checks
# and refuses a false flag outright).
cargo run --release -p bench-harness --offline -- blame --smoke --out-dir "$wc_dir" > /dev/null
test -s "$wc_dir/blame.csv"
test -s "$wc_dir/BENCH_blame.json"
test -s "$wc_dir/blame_folded.txt"
grep -q '"experiment": "blame"' "$wc_dir/BENCH_blame.json"
grep -q '"blame_ns"' "$wc_dir/BENCH_blame.json"
grep -q 'critical_path' "$wc_dir/blame_folded.txt"
if grep -q '"exposed_comm_eliminated": false' "$wc_dir/BENCH_blame.json"; then
    echo "ci: BENCH_blame.json claims exposed communication was NOT eliminated" >&2
    exit 1
fi
grep -q '"exposed_comm_eliminated": true' "$wc_dir/BENCH_blame.json"

# Observability must be inert when off: rerunning the weak-scaling family
# with no telemetry/blame enabled must reproduce the committed CSV bodies
# byte for byte.
cargo run --release -p bench-harness --offline -- table1 --out-dir "$wc_dir" > /dev/null
cargo run --release -p bench-harness --offline -- fig5 --out-dir "$wc_dir" > /dev/null
for f in table1.csv fig5.csv; do
    cmp -s "$wc_dir/$f" "results/$f" || {
        echo "ci: results/$f drifted from a fresh telemetry-off run" >&2
        exit 1
    }
done

# EXT-13 smoke: the adaptive-vs-static scenario suite must emit both
# artifacts and the dominance claim must hold (the validator refuses to
# emit "adaptive_dominates": false; the shell re-checks the flag and
# refuses a false one outright).
cargo run --release -p bench-harness --offline -- adapt --smoke --out-dir "$wc_dir" > /dev/null
test -s "$wc_dir/adapt.csv"
test -s "$wc_dir/BENCH_adapt.json"
grep -q '"experiment": "adapt"' "$wc_dir/BENCH_adapt.json"
grep -q '"cells"' "$wc_dir/BENCH_adapt.json"
if grep -q '"adaptive_dominates": false' "$wc_dir/BENCH_adapt.json"; then
    echo "ci: BENCH_adapt.json claims the adaptive policy does NOT dominate" >&2
    exit 1
fi
grep -q '"adaptive_dominates": true' "$wc_dir/BENCH_adapt.json"
echo "ci: all gates passed"
