#!/usr/bin/env sh
# Repo CI gate: formatting, release build, full test suite, lint-clean under
# clippy, and a fast end-to-end serving smoke (EXT-8). Run from the repo
# root. Fails fast on the first broken step.
set -eu

cargo fmt --all -- --check
cargo build --release --workspace --offline
cargo test -q --workspace --offline
cargo clippy --all-targets --workspace --offline -- -D warnings
cargo run --release -p bench-harness --offline -- serve --smoke
