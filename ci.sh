#!/usr/bin/env sh
# Repo CI gate: release build, full test suite, lint-clean under clippy.
# Run from the repo root. Fails fast on the first broken step.
set -eu

cargo build --release --workspace --offline
cargo test -q --workspace --offline
cargo clippy --all-targets --workspace --offline -- -D warnings
