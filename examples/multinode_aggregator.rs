//! The §V multi-node extension: on an inter-node fabric, per-row one-sided
//! writes drown in per-message headers; the asynchronous aggregator (after
//! SC'22's "Getting CPUs out of the way") stages rows per destination and
//! flushes them as single large messages on size or age thresholds.
//!
//! ```sh
//! cargo run --release --example multinode_aggregator
//! ```

use pgas_embedding::desim::{Dur, SimTime};
use pgas_embedding::gpusim::{Machine, MachineConfig};
use pgas_embedding::pgas::{Aggregator, AggregatorConfig};

fn main() {
    // Two nodes, one GPU each: all traffic crosses InfiniBand.
    let rows: u64 = 50_000;
    let span = Dur::from_us(200); // rows become ready over this window

    // --- Naive: one 256 B message per row. ---
    let mut naive = Machine::new(MachineConfig::multi_node_v100(2, 1));
    let step = Dur::from_ns(span.as_ns() / rows);
    let mut naive_end = SimTime::ZERO;
    for i in 0..rows {
        let iv = naive.send(0, 1, 256, 1, SimTime::ZERO + step * i);
        naive_end = naive_end.max(iv.end);
    }

    // --- Aggregated: 64 KiB flushes, 50 µs max wait. ---
    let mut agg_m = Machine::new(MachineConfig::multi_node_v100(2, 1));
    let mut agg = Aggregator::new(AggregatorConfig::default());
    let mut agg_end = SimTime::ZERO;
    for i in 0..rows {
        if let Some(iv) = agg.store(&mut agg_m, 0, 1, 256, SimTime::ZERO + step * i) {
            agg_end = agg_end.max(iv.end);
        }
    }
    for iv in agg.flush_all(&mut agg_m, SimTime::ZERO + span) {
        agg_end = agg_end.max(iv.end);
    }

    let ns = naive.traffic_stats();
    let ags = agg_m.traffic_stats();
    println!("{rows} embedding rows (256 B each) over a {span} window, IB link:");
    println!(
        "  naive:      {:>10}  {:>8} messages  header overhead {:>5.1}%",
        naive_end - SimTime::ZERO,
        ns.messages,
        100.0 * ns.header_overhead()
    );
    println!(
        "  aggregated: {:>10}  {:>8} messages  header overhead {:>5.1}%",
        agg_end - SimTime::ZERO,
        ags.messages,
        100.0 * ags.header_overhead()
    );
    println!(
        "  delivery speedup {:.2}x with {:.0}x fewer messages",
        (naive_end - SimTime::ZERO).as_secs_f64() / (agg_end - SimTime::ZERO).as_secs_f64(),
        ns.messages as f64 / ags.messages as f64
    );
    assert_eq!(
        ns.payload_bytes, ags.payload_bytes,
        "same payload delivered"
    );
}
