//! The paper's §V future-work extension: the EMB **backward** pass, where
//! bag gradients must travel back to the GPUs owning the tables. Compares
//! the collective-rounds baseline against PGAS one-sided atomic pushes, then
//! applies an SGD step and verifies the update against the serial reference.
//!
//! ```sh
//! cargo run --release --example backward_pass
//! ```

use pgas_embedding::gpusim::{Machine, MachineConfig};
use pgas_embedding::pgas::PgasConfig;
use pgas_embedding::retrieval::backend::ExecMode;
use pgas_embedding::retrieval::backward::{
    baseline_backward, pgas_backward, reference_backward, sgd_update,
};
use pgas_embedding::retrieval::{EmbLayerConfig, EmbeddingShard, SparseBatch};
use pgas_embedding::simccl::CollectiveConfig;

fn main() {
    let gpus = 2;
    let mut cfg = EmbLayerConfig::paper_weak_scaling(gpus).scaled_down(256);
    cfg.n_batches = 5;
    cfg.distinct_batches = 1;

    // --- Timed comparison. ---
    let mut mb = Machine::new(MachineConfig::dgx_v100(gpus));
    let base = baseline_backward(
        &mut mb,
        &cfg,
        &CollectiveConfig::default(),
        ExecMode::Timing,
    );
    let mut mp = Machine::new(MachineConfig::dgx_v100(gpus));
    let pgas = pgas_backward(&mut mp, &cfg, PgasConfig::default(), ExecMode::Timing);
    println!(
        "backward over {} batches: baseline {} vs pgas {}  ({:.2}x)",
        cfg.n_batches,
        base.report.total,
        pgas.report.total,
        base.report.total.as_secs_f64() / pgas.report.total.as_secs_f64()
    );

    // --- Functional gradients + SGD step. ---
    let mut mf = Machine::new(MachineConfig::dgx_v100(gpus));
    let grads = pgas_backward(&mut mf, &cfg, PgasConfig::default(), ExecMode::Functional)
        .grads
        .unwrap();
    let batch = SparseBatch::generate(&cfg.batch_spec(), cfg.batch_seed(cfg.n_batches - 1));
    let reference = reference_backward(&batch, cfg.table_spec(), cfg.pooling, cfg.seed);

    let sharding = cfg.sharding();
    let lr = 0.01;
    for (dev, dev_grads) in grads.iter().enumerate() {
        let features = sharding.features_on(dev, cfg.n_features);
        let mut shard = EmbeddingShard::materialize(&features, cfg.table_spec(), cfg.seed);
        // Check gradients against the oracle before updating.
        for (i, &f) in features.iter().enumerate() {
            assert!(
                dev_grads[i].allclose(&reference[f], 1e-4),
                "gradient mismatch on feature {f}"
            );
        }
        let before = shard.weights(features[0]).clone();
        sgd_update(&mut shard, dev_grads, lr);
        let after = shard.weights(features[0]);
        let moved = before.max_abs_diff(after);
        println!("device {dev}: gradients verified, SGD step moved weights by up to {moved:.5}");
        assert!(moved > 0.0, "update must change weights");
    }
    println!("backward pass verified against the serial reference ✓");
}
