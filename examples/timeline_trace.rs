//! Export Chrome-trace timelines of one batch under each backend — the
//! visual version of the paper's Figure 7: open the two JSON files in
//! `chrome://tracing` or https://ui.perfetto.dev and compare the link rows.
//!
//! ```sh
//! cargo run --release --example timeline_trace -- [--out-dir DIR]
//! ```
//!
//! Traces land in `DIR` (default `results/`). With telemetry enabled the
//! export also carries counter tracks (per-link utilization and queue depth
//! sampled per traffic bucket) and flow arrows tying each remote PGAS put to
//! the pooled write it lands in. The backend traces add `blame.bN` lanes:
//! each batch's extracted critical path as one span per segment, named by
//! its blame category — read them against the kernel/link rows above to see
//! exactly which resource the batch was waiting on at every instant.

use std::fs;
use std::path::PathBuf;

use pgas_embedding::gpusim::{Machine, MachineConfig};
use pgas_embedding::retrieval::backend::{
    BaselineBackend, ExecMode, PgasFusedBackend, RetrievalBackend,
};
use pgas_embedding::retrieval::EmbLayerConfig;

fn parse_out_dir() -> PathBuf {
    let mut out = PathBuf::from("results");
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out-dir" => out = PathBuf::from(it.next().expect("--out-dir DIR")),
            "--help" | "-h" => {
                println!("usage: timeline_trace [--out-dir DIR]   (default: results/)");
                std::process::exit(0);
            }
            other => panic!("unknown flag {other}"),
        }
    }
    out
}

fn main() {
    let out_dir = parse_out_dir();
    fs::create_dir_all(&out_dir).expect("create out dir");

    let mut cfg = EmbLayerConfig::paper_weak_scaling(2).scaled_down(32);
    cfg.n_batches = 1;

    let mut m = Machine::new(MachineConfig::dgx_v100(2));
    m.enable_trace();
    m.enable_telemetry();
    m.enable_blame();
    BaselineBackend::new().run(&mut m, &cfg, ExecMode::Timing);
    m.trace_counter_tracks();
    m.blame_trace_lanes();
    let baseline = m.trace().unwrap();
    let baseline_path = out_dir.join("trace_baseline.json");
    let json = baseline.to_chrome_json();
    pgas_embedding::telemetry::validate_json_doc(&json, &["ph", "pid", "blame.b0"])
        .expect("baseline trace must be well-formed with blame lanes");
    fs::write(&baseline_path, json).unwrap();
    println!(
        "{}: {} spans, {} counter samples, horizon {}",
        baseline_path.display(),
        baseline.len(),
        baseline.counters().len(),
        baseline.horizon()
    );

    let mut m = Machine::new(MachineConfig::dgx_v100(2));
    m.enable_trace();
    m.enable_telemetry();
    m.enable_blame();
    PgasFusedBackend::new().run(&mut m, &cfg, ExecMode::Timing);
    m.trace_counter_tracks();
    m.blame_trace_lanes();
    let pgas = m.trace().unwrap();
    let pgas_path = out_dir.join("trace_pgas.json");
    let json = pgas.to_chrome_json();
    pgas_embedding::telemetry::validate_json_doc(&json, &["ph", "pid", "blame.b0"])
        .expect("pgas trace must be well-formed with blame lanes");
    fs::write(&pgas_path, json).unwrap();
    println!(
        "{}: {} spans, {} counter samples, {} flow arrows, horizon {}",
        pgas_path.display(),
        pgas.len(),
        pgas.counters().len(),
        pgas.flows().len(),
        pgas.horizon()
    );

    // The executed pipeline engine (EXT-15): same workload through the
    // fused + software-pipelined schedule. The `gpu{d}.s0` lanes carry the
    // per-device head streams — `top_mlp` then the chunked persistent
    // `interact`/`bottom_mlp` kernel, with gaps where chunks wait on
    // arrivals (the pipeline bubbles); the default-stream lanes underneath
    // keep running the next batch's EMB kernels.
    let mut dcfg = pgas_embedding::dlrm::DlrmConfig::tiny(2);
    dcfg.emb = cfg.clone();
    dcfg.emb.n_batches = 2;
    let model = pgas_embedding::dlrm::Dlrm::new(dcfg);
    let mut m = Machine::new(MachineConfig::dgx_v100(2));
    m.enable_trace();
    m.enable_telemetry();
    pgas_embedding::dlrm::PipelineEngine::new(&model).run(
        &mut m,
        &pgas_embedding::dlrm::EngineBackend::pgas(),
        ExecMode::Timing,
    );
    m.trace_counter_tracks();
    let pipeline = m.trace().unwrap();
    let pipeline_path = out_dir.join("trace_pipeline.json");
    let json = pipeline.to_chrome_json();
    pgas_embedding::telemetry::validate_json_doc(&json, &["ph", "pid"])
        .expect("pipeline trace must be well-formed");
    fs::write(&pipeline_path, json).unwrap();
    println!(
        "{}: {} spans, {} counter samples, {} flow arrows, horizon {}",
        pipeline_path.display(),
        pipeline.len(),
        pipeline.counters().len(),
        pipeline.flows().len(),
        pipeline.horizon()
    );

    println!("\nOpen them in chrome://tracing — the baseline's link rows are");
    println!("empty until its kernels end; the PGAS link rows run underneath");
    println!("the kernels, which is the whole paper in one picture. The");
    println!("pipeline trace adds the gpuN.s0 head-stream lanes: interaction");
    println!("chunks firing mid-EMB on PGAS arrivals, batches overlapping.");
    println!("The blame.bN lane in the backend traces paints the extracted");
    println!("critical path: baseline's is striped with queue_comm/wire");
    println!("segments after the lookup kernels; PGAS's is gather_pool");
    println!("nearly wall to wall.");
}
