//! Export Chrome-trace timelines of one batch under each backend — the
//! visual version of the paper's Figure 7: open the two JSON files in
//! `chrome://tracing` or https://ui.perfetto.dev and compare the link rows.
//!
//! ```sh
//! cargo run --release --example timeline_trace
//! ```

use std::fs;

use pgas_embedding::gpusim::{Machine, MachineConfig};
use pgas_embedding::retrieval::backend::{
    BaselineBackend, ExecMode, PgasFusedBackend, RetrievalBackend,
};
use pgas_embedding::retrieval::EmbLayerConfig;

fn main() {
    let mut cfg = EmbLayerConfig::paper_weak_scaling(2).scaled_down(32);
    cfg.n_batches = 1;

    let mut m = Machine::new(MachineConfig::dgx_v100(2));
    m.enable_trace();
    BaselineBackend::new().run(&mut m, &cfg, ExecMode::Timing);
    let baseline = m.trace().unwrap();
    fs::write("trace_baseline.json", baseline.to_chrome_json()).unwrap();
    println!(
        "trace_baseline.json: {} spans, horizon {}",
        baseline.len(),
        baseline.horizon()
    );

    let mut m = Machine::new(MachineConfig::dgx_v100(2));
    m.enable_trace();
    PgasFusedBackend::new().run(&mut m, &cfg, ExecMode::Timing);
    let pgas = m.trace().unwrap();
    fs::write("trace_pgas.json", pgas.to_chrome_json()).unwrap();
    println!(
        "trace_pgas.json:     {} spans, horizon {}",
        pgas.len(),
        pgas.horizon()
    );

    println!("\nOpen both in chrome://tracing — the baseline's link rows are");
    println!("empty until its kernels end; the PGAS link rows run underneath");
    println!("the kernels, which is the whole paper in one picture.");
}
