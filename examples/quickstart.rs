//! Quickstart: run the embedding-retrieval forward pass with both
//! communication backends on a simulated 2-GPU NVLink machine, verify they
//! produce identical outputs, and compare their runtimes.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use pgas_embedding::gpusim::{Machine, MachineConfig};
use pgas_embedding::retrieval::backend::{
    BaselineBackend, ExecMode, PgasFusedBackend, RetrievalBackend,
};
use pgas_embedding::retrieval::{reference::reference_forward, EmbLayerConfig, SparseBatch};

fn main() {
    // A scaled-down version of the paper's weak-scaling workload: the scale
    // knob shrinks batch/tables/rows but preserves the kernel's occupancy
    // and wave structure, so the timing shape matches paper scale.
    let mut cfg = EmbLayerConfig::paper_weak_scaling(2).scaled_down(64);
    cfg.n_batches = 10;
    println!(
        "workload: {} tables x {} rows, d={}, batch={}, pooling<= {}, {} batches on {} GPUs",
        cfg.n_features,
        cfg.table_rows,
        cfg.dim,
        cfg.batch_size,
        cfg.pooling_max,
        cfg.n_batches,
        cfg.n_gpus
    );

    // --- Baseline: lookup kernel -> all_to_all_single -> sync + unpack. ---
    let mut m = Machine::new(MachineConfig::dgx_v100(cfg.n_gpus));
    let baseline = BaselineBackend::new().run(&mut m, &cfg, ExecMode::Functional);
    let b = &baseline.report;
    println!(
        "baseline:   {:>10} total  (compute {}, comm {}, sync+unpack {})",
        b.total, b.breakdown.compute, b.breakdown.communication, b.breakdown.sync_unpack
    );

    // --- PGAS fused: one-sided 256 B writes from inside the kernel. ---
    let mut m = Machine::new(MachineConfig::dgx_v100(cfg.n_gpus));
    let pgas = PgasFusedBackend::new().run(&mut m, &cfg, ExecMode::Functional);
    let p = &pgas.report;
    println!(
        "pgas-fused: {:>10} total  (communication hidden inside the kernel)",
        p.total
    );
    println!(
        "speedup: {:.2}x    messages: baseline {} vs pgas {}",
        b.total.as_secs_f64() / p.total.as_secs_f64(),
        b.traffic.messages,
        p.traffic.messages
    );

    // --- Verify both backends against the serial reference. ---
    let batch = SparseBatch::generate(&cfg.batch_spec(), cfg.batch_seed(cfg.n_batches - 1));
    let reference = reference_forward(&batch, cfg.table_spec(), cfg.pooling, cfg.n_gpus, cfg.seed);
    let (bo, po) = (baseline.outputs.unwrap(), pgas.outputs.unwrap());
    for dev in 0..cfg.n_gpus {
        assert!(bo[dev].allclose(&reference[dev], 1e-5), "baseline mismatch");
        assert!(po[dev].allclose(&reference[dev], 1e-5), "pgas mismatch");
    }
    println!("functional check: both backends match the serial reference ✓");
}
