//! Sharding playground: how table placement and the CPU-side input
//! partitioner interact (paper §II-C and the §V row-wise discussion).
//!
//! ```sh
//! cargo run --release --example sharding_playground
//! ```

use pgas_embedding::gpusim::{Machine, MachineConfig};
use pgas_embedding::retrieval::backend::{ExecMode, PgasFusedBackend, RetrievalBackend};
use pgas_embedding::retrieval::{EmbLayerConfig, InputPartition, Sharding, SparseBatch};

fn main() {
    let gpus = 4;
    let mut cfg = EmbLayerConfig::paper_weak_scaling(gpus).scaled_down(64);
    cfg.n_batches = 5;
    let batch = SparseBatch::generate_counts_only(&cfg.batch_spec(), cfg.seed);

    println!("== placement: block vs round-robin table-wise sharding ==");
    for (name, sharding) in [
        ("block", Sharding::table_wise_block(cfg.n_features, gpus)),
        (
            "round-robin",
            Sharding::table_wise_round_robin(cfg.n_features, gpus),
        ),
    ] {
        let per_dev: Vec<usize> = (0..gpus)
            .map(|d| sharding.features_on(d, cfg.n_features).len())
            .collect();
        println!("  {name:12} tables per GPU: {per_dev:?}");
    }

    println!("\n== CPU input-partitioning cost (paper §V) ==");
    let tw = InputPartition::compute(&batch, &Sharding::table_wise_block(cfg.n_features, gpus));
    let rw = InputPartition::compute(&batch, &Sharding::RowWise { n_devices: gpus });
    println!(
        "  table-wise: cpu {} + h2d {}  ({} indices routed)",
        tw.cpu_time,
        tw.h2d_time,
        tw.indices_per_device.iter().sum::<usize>()
    );
    println!(
        "  row-wise:   cpu {} + h2d {}  (per-index routing: {:.1}x the CPU cost)",
        rw.cpu_time,
        rw.h2d_time,
        rw.cpu_time.as_secs_f64() / tw.cpu_time.as_secs_f64()
    );

    println!("\n== does placement change retrieval time? (uniform inputs: no) ==");
    let mut m = Machine::new(MachineConfig::dgx_v100(gpus));
    let r = PgasFusedBackend::new()
        .run(&mut m, &cfg, ExecMode::Timing)
        .report;
    println!(
        "  table-wise block: EMB stage {} over {} batches ({} per batch)",
        r.total,
        r.batches,
        r.per_batch()
    );
    println!("\nUnder uniform synthetic inputs every table sees identical load, so");
    println!("table-wise placement variants tie; skew (see `reproduce ablation-zipf`)");
    println!("and row-wise partitioning costs are where placement starts to matter.");
}
