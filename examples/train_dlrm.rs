//! A complete DLRM training loop: forward with a retrieval backend, BCE
//! loss, backprop through the head, EMB backward (the paper's §V
//! extension), SGD on everything — plus the simulated timing comparison of
//! a full training iteration under both communication schemes.
//!
//! ```sh
//! cargo run --release --example train_dlrm
//! ```

use pgas_embedding::dlrm::{DenseBatch, Dlrm, DlrmConfig, TrainingPipeline};
use pgas_embedding::gpusim::{Machine, MachineConfig};
use pgas_embedding::retrieval::backend::{
    BaselineBackend, ExecMode, PgasFusedBackend, RetrievalBackend,
};
use pgas_embedding::tensor::Tensor;

fn main() {
    let gpus = 2;
    let cfg = DlrmConfig::tiny(gpus);
    let mut model = Dlrm::new(cfg.clone());

    // --- Functional training: overfit one batch, watch the loss fall. ---
    let mut m = Machine::new(MachineConfig::dgx_v100(gpus));
    let emb_out = PgasFusedBackend::new()
        .run(&mut m, &cfg.emb, ExecMode::Functional)
        .outputs
        .unwrap();
    let dense = DenseBatch::generate(cfg.emb.batch_size, cfg.n_dense, 11);
    let mb = cfg.emb.mb_size();
    let labels: Vec<Tensor> = (0..gpus)
        .map(|d| {
            Tensor::rand_uniform(&[mb, 1], 0.0, 1.0, 100 + d as u64).map(|x| {
                if x > 0.5 {
                    1.0
                } else {
                    0.0
                }
            })
        })
        .collect();

    println!("training the DLRM head on one batch ({} samples/GPU):", mb);
    for step in 0..10 {
        // Data-parallel: each device trains on its mini-batch; a real run
        // would all-reduce the MLP grads — here we train device 0's replica.
        let g = model.head_train_step(&dense.minibatch(0, gpus), &emb_out[0], &labels[0], 0.5);
        if step % 3 == 0 || step == 9 {
            println!("  step {step:2}: loss {:.4}", g.loss);
        }
        // The gradient that would flow into the EMB backward pass:
        assert_eq!(g.grad_emb_out.dims(), emb_out[0].dims());
    }

    // --- Timed: one full training iteration, both communication schemes. ---
    let pipeline = TrainingPipeline::new(&model);
    let mut mbm = Machine::new(MachineConfig::dgx_v100(gpus));
    let base = pipeline.run(&mut mbm, &BaselineBackend::new(), false);
    let mut mpm = Machine::new(MachineConfig::dgx_v100(gpus));
    let pgas = pipeline.run(&mut mpm, &PgasFusedBackend::new(), true);

    println!("\nper-iteration timing (simulated, {} GPUs):", gpus);
    println!(
        "  baseline: emb_fwd {} + head {} + emb_bwd {} + allreduce {}",
        base.emb_forward, base.head, base.emb_backward, base.grad_allreduce
    );
    println!(
        "  pgas:     emb_fwd {} + head {} + emb_bwd {} + allreduce {}",
        pgas.emb_forward, pgas.head, pgas.emb_backward, pgas.grad_allreduce
    );
    println!(
        "  full-iteration speedup: {:.2}x",
        base.total.as_secs_f64() / pgas.total.as_secs_f64()
    );
}
