//! End-to-end DLRM inference (paper Fig. 1 / Fig. 4): dense features through
//! the top MLP, sparse features through the sharded embedding layer,
//! interaction, bottom MLP, sigmoid — with the EMB layer served by either
//! backend.
//!
//! ```sh
//! cargo run --release --example dlrm_inference
//! ```

use pgas_embedding::dlrm::{Dlrm, DlrmConfig, InferencePipeline};
use pgas_embedding::gpusim::{Machine, MachineConfig};
use pgas_embedding::retrieval::backend::{BaselineBackend, ExecMode, PgasFusedBackend};

fn main() {
    let gpus = 4;
    let mut cfg = DlrmConfig::tiny(gpus);
    cfg.emb = cfg.emb.scaled_down(1); // tiny() already scales; keep explicit
    cfg.emb.n_batches = 10;
    let model = Dlrm::new(cfg.clone());
    let pipeline = InferencePipeline::new(&model);

    println!(
        "DLRM: {} dense features, top MLP {:?}, {} sparse features (d={}), bottom MLP {:?}",
        cfg.n_dense,
        cfg.top_widths(),
        cfg.emb.n_features,
        cfg.emb.dim,
        cfg.bottom_widths()
    );

    let mut m = Machine::new(MachineConfig::dgx_v100(gpus));
    let base = pipeline.run(&mut m, &BaselineBackend::new(), ExecMode::Functional);
    let mut m = Machine::new(MachineConfig::dgx_v100(gpus));
    let pgas = pipeline.run(&mut m, &PgasFusedBackend::new(), ExecMode::Functional);

    println!(
        "baseline pipeline: {} total | EMB stage {} ({:.0}% of total)",
        base.total,
        base.emb.total,
        100.0 * base.emb_fraction()
    );
    println!(
        "pgas pipeline:     {} total | EMB stage {} ({:.0}% of total)",
        pgas.total,
        pgas.emb.total,
        100.0 * pgas.emb_fraction()
    );
    println!(
        "end-to-end speedup: {:.2}x",
        base.total.as_secs_f64() / pgas.total.as_secs_f64()
    );

    // Predictions agree no matter which communication scheme served the
    // embedding layer.
    let (bp, pp) = (base.predictions.unwrap(), pgas.predictions.unwrap());
    let mut shown = 0;
    println!("sample click probabilities (device 0):");
    for (i, (&b, &p)) in bp[0].data().iter().zip(pp[0].data()).enumerate() {
        assert!((b - p).abs() < 1e-6, "prediction mismatch at row {i}");
        if shown < 5 {
            println!("  sample {i}: {b:.4}");
            shown += 1;
        }
    }
    println!("predictions identical across backends ✓");
}
